package rangesample

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// makeDataset returns n values 0,1,...,n-1 with pseudorandom weights.
func makeDataset(n int, seed uint64) (values, weights []float64) {
	r := rng.New(seed)
	values = make([]float64, n)
	weights = make([]float64, n)
	for i := range values {
		values[i] = float64(i)
		weights[i] = r.Float64()*9 + 0.5
	}
	return values, weights
}

// allSamplers builds every static structure over the same data.
func allSamplers(t *testing.T, values, weights []float64) map[string]Sampler {
	t.Helper()
	out := map[string]Sampler{}
	nv, err := NewNaive(values, weights)
	if err != nil {
		t.Fatal(err)
	}
	out["naive"] = nv
	tw, err := NewTreeWalk(values, weights)
	if err != nil {
		t.Fatal(err)
	}
	out["treewalk"] = tw
	aa, err := NewAliasAug(values, weights)
	if err != nil {
		t.Fatal(err)
	}
	out["aliasaug"] = aa
	ck, err := NewChunked(values, weights)
	if err != nil {
		t.Fatal(err)
	}
	out["chunked"] = ck
	ck3, err := NewChunkedSize(values, weights, 3)
	if err != nil {
		t.Fatal(err)
	}
	out["chunked3"] = ck3
	return out
}

// iv builds a closed interval (keyed constructor keeping vet happy with
// the aliased bst.Interval type).
func iv(lo, hi float64) Interval { return Interval{Lo: lo, Hi: hi} }

func chi2Crit(dof int) float64 {
	z := 3.719 // alpha = 1e-4
	d := float64(dof)
	x := 1 - 2/(9*d) + z*math.Sqrt(2/(9*d))
	return d * x * x * x
}

func TestConstructorErrors(t *testing.T) {
	for name, build := range map[string]func([]float64, []float64) (Sampler, error){
		"naive":    func(v, w []float64) (Sampler, error) { return NewNaive(v, w) },
		"treewalk": func(v, w []float64) (Sampler, error) { return NewTreeWalk(v, w) },
		"aliasaug": func(v, w []float64) (Sampler, error) { return NewAliasAug(v, w) },
		"chunked":  func(v, w []float64) (Sampler, error) { return NewChunked(v, w) },
	} {
		if _, err := build(nil, nil); err == nil {
			t.Fatalf("%s: empty input accepted", name)
		}
		if _, err := build([]float64{1, 2}, []float64{1}); err == nil {
			t.Fatalf("%s: mismatched lengths accepted", name)
		}
		if _, err := build([]float64{1, 2}, []float64{1, -1}); err == nil {
			t.Fatalf("%s: negative weight accepted", name)
		}
	}
	if _, err := NewChunkedSize([]float64{1}, []float64{1}, 0); err == nil {
		t.Fatal("chunk size 0 accepted")
	}
}

func TestEmptyRange(t *testing.T) {
	values, weights := makeDataset(100, 1)
	r := rng.New(2)
	for name, s := range allSamplers(t, values, weights) {
		for _, q := range []Interval{iv(-10, -5), iv(1000, 2000), iv(5.2, 5.8), iv(50, 40)} {
			out, ok := s.Query(r, q, 5, nil)
			if ok || len(out) != 0 {
				t.Fatalf("%s: query %v returned ok=%v len=%d", name, q, ok, len(out))
			}
		}
	}
}

func TestSamplesWithinRange(t *testing.T) {
	values, weights := makeDataset(257, 3)
	r := rng.New(4)
	samplers := allSamplers(t, values, weights)
	f := func(loRaw, spanRaw uint16) bool {
		lo := float64(loRaw % 257)
		hi := lo + float64(spanRaw%257)
		q := iv(lo, hi)
		for _, s := range samplers {
			out, ok := s.Query(r, q, 8, nil)
			if !ok {
				continue
			}
			for _, pos := range out {
				v := s.Value(pos)
				if v < lo || v > hi {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestDistributionAgreement is the central correctness test: all four
// structures must realise the exact weighted distribution over S ∩ q.
func TestDistributionAgreement(t *testing.T) {
	const n = 64
	values, weights := makeDataset(n, 5)
	samplers := allSamplers(t, values, weights)
	queries := []Interval{
		iv(0, n-1),     // everything
		iv(10.5, 42.5), // interior, cuts chunks
		iv(0, 7),       // prefix
		iv(n-5, n-1),   // suffix
		iv(31, 33),     // few elements
		iv(17, 17),     // single element
	}
	for name, s := range samplers {
		r := rng.New(100)
		for _, q := range queries {
			a, b := int(math.Ceil(q.Lo)), int(math.Floor(q.Hi))
			k := b - a + 1
			total := 0.0
			for i := a; i <= b; i++ {
				total += weights[i]
			}
			const draws = 60000
			counts := make([]int, k)
			out, ok := s.Query(r, q, draws, nil)
			if !ok {
				t.Fatalf("%s: query %v unexpectedly empty", name, q)
			}
			for _, pos := range out {
				v := int(s.Value(pos))
				if v < a || v > b {
					t.Fatalf("%s: sampled %d outside [%d,%d]", name, v, a, b)
				}
				counts[v-a]++
			}
			if k == 1 {
				continue
			}
			chi2 := 0.0
			for i := 0; i < k; i++ {
				expected := draws * weights[a+i] / total
				d := float64(counts[i]) - expected
				chi2 += d * d / expected
			}
			if chi2 > chi2Crit(k-1) {
				t.Fatalf("%s query %v: chi2 = %v > crit %v", name, q, chi2, chi2Crit(k-1))
			}
		}
	}
}

// TestUniformWeights exercises the WR special case (all weights equal).
func TestUniformWeights(t *testing.T) {
	const n = 100
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}
	samplers := allSamplers(t, values, uniform(n))
	q := iv(20, 79) // 60 elements
	for name, s := range samplers {
		r := rng.New(7)
		const draws = 120000
		counts := make([]int, 60)
		out, _ := s.Query(r, q, draws, nil)
		for _, pos := range out {
			counts[int(s.Value(pos))-20]++
		}
		expected := float64(draws) / 60
		chi2 := 0.0
		for _, c := range counts {
			d := float64(c) - expected
			chi2 += d * d / expected
		}
		if chi2 > chi2Crit(59) {
			t.Fatalf("%s: uniform chi2 = %v", name, chi2)
		}
	}
}

func TestSingleElementDataset(t *testing.T) {
	for name, s := range allSamplers(t, []float64{5}, []float64{2}) {
		r := rng.New(8)
		out, ok := s.Query(r, iv(0, 10), 3, nil)
		if !ok || len(out) != 3 {
			t.Fatalf("%s: ok=%v len=%d", name, ok, len(out))
		}
		for _, pos := range out {
			if s.Value(pos) != 5 {
				t.Fatalf("%s: value %v", name, s.Value(pos))
			}
		}
		if _, ok := s.Query(r, iv(6, 10), 1, nil); ok {
			t.Fatalf("%s: empty query returned ok", name)
		}
	}
}

func TestUnsortedInputHandled(t *testing.T) {
	values := []float64{30, 10, 20}
	weights := []float64{3, 1, 2}
	for name, s := range allSamplers(t, values, weights) {
		if s.Value(0) != 10 || s.Value(1) != 20 || s.Value(2) != 30 {
			t.Fatalf("%s: values not sorted", name)
		}
		if s.Weight(0) != 1 || s.Weight(2) != 3 {
			t.Fatalf("%s: weights did not follow values", name)
		}
	}
}

func TestRangeWeight(t *testing.T) {
	const n = 128
	values, weights := makeDataset(n, 9)
	aa, _ := NewAliasAug(values, weights)
	ck, _ := NewChunked(values, weights)
	r := rng.New(10)
	for trial := 0; trial < 200; trial++ {
		a := r.Intn(n)
		b := a + r.Intn(n-a)
		q := iv(float64(a), float64(b))
		want := 0.0
		for i := a; i <= b; i++ {
			want += weights[i]
		}
		if got := aa.RangeWeight(q); math.Abs(got-want) > 1e-6 {
			t.Fatalf("aliasaug RangeWeight(%v) = %v, want %v", q, got, want)
		}
		if got := ck.RangeWeight(q); math.Abs(got-want) > 1e-6 {
			t.Fatalf("chunked RangeWeight(%v) = %v, want %v", q, got, want)
		}
	}
	if got := aa.RangeWeight(iv(-5, -1)); got != 0 {
		t.Fatalf("empty RangeWeight = %v", got)
	}
	if got := ck.RangeWeight(iv(-5, -1)); got != 0 {
		t.Fatalf("empty RangeWeight = %v", got)
	}
}

func TestChunkedVariousSizes(t *testing.T) {
	// Chunk-size ablation correctness: the distribution must not depend
	// on the chunk size.
	const n = 64
	values, weights := makeDataset(n, 11)
	q := iv(5.5, 58.5)
	a, b := 6, 58
	total := 0.0
	for i := a; i <= b; i++ {
		total += weights[i]
	}
	for _, cs := range []int{1, 2, 5, 16, 64, 200} {
		ck, err := NewChunkedSize(values, weights, cs)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(12)
		const draws = 60000
		counts := make([]int, b-a+1)
		out, _ := ck.Query(r, q, draws, nil)
		for _, pos := range out {
			counts[int(ck.Value(pos))-a]++
		}
		chi2 := 0.0
		for i := range counts {
			expected := draws * weights[a+i] / total
			d := float64(counts[i]) - expected
			chi2 += d * d / expected
		}
		if chi2 > chi2Crit(b-a) {
			t.Fatalf("chunk size %d: chi2 = %v", cs, chi2)
		}
	}
}

func TestChunkedAlignedQuery(t *testing.T) {
	// Queries that are exactly chunk aligned exercise the w1=w3=0 paths.
	values, weights := makeDataset(40, 13)
	ck, err := NewChunkedSize(values, weights, 10)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(14)
	out, ok := ck.Query(r, iv(10, 29), 1000, nil) // chunks 1..2 exactly
	if !ok {
		t.Fatal("aligned query empty")
	}
	for _, pos := range out {
		if v := ck.Value(pos); v < 10 || v > 29 {
			t.Fatalf("sampled %v outside [10,29]", v)
		}
	}
}

func TestCrossQueryIndependenceRepeatedQuery(t *testing.T) {
	// Equation (1): repeating the same query must give fresh independent
	// samples. With s=1 over two equal-weight elements, consecutive query
	// outputs form pairs whose four outcomes must be equally likely.
	values := []float64{0, 1}
	for name, s := range allSamplers(t, values, uniform(2)) {
		r := rng.New(15)
		q := iv(0, 1)
		var pairs [4]int
		const queries = 40000
		prevOut, _ := s.Query(r, q, 1, nil)
		prev := int(s.Value(prevOut[0]))
		for i := 0; i < queries; i++ {
			out, _ := s.Query(r, q, 1, nil)
			cur := int(s.Value(out[0]))
			pairs[prev*2+cur]++
			prev = cur
		}
		expected := float64(queries) / 4
		for i, c := range pairs {
			if math.Abs(float64(c)-expected) > 6*math.Sqrt(expected) {
				t.Fatalf("%s: pair %02b count %d, expected ~%v", name, i, c, expected)
			}
		}
	}
}

func TestDuplicateValuesSampled(t *testing.T) {
	values := []float64{5, 5, 5, 1, 9}
	weights := []float64{1, 1, 1, 1, 1}
	for name, s := range allSamplers(t, values, weights) {
		r := rng.New(16)
		out, ok := s.Query(r, iv(5, 5), 3000, nil)
		if !ok {
			t.Fatalf("%s: duplicate query empty", name)
		}
		posSeen := map[int]int{}
		for _, pos := range out {
			if s.Value(pos) != 5 {
				t.Fatalf("%s: wrong value %v", name, s.Value(pos))
			}
			posSeen[pos]++
		}
		if len(posSeen) != 3 {
			t.Fatalf("%s: only %d of 3 duplicate positions sampled", name, len(posSeen))
		}
	}
}

func TestRejectsNaNAndInfValues(t *testing.T) {
	bads := [][]float64{
		{1, math.NaN(), 3},
		{1, math.Inf(1), 3},
		{math.Inf(-1), 2, 3},
	}
	for _, values := range bads {
		w := uniform(3)
		if _, err := NewChunked(values, w); err == nil {
			t.Fatalf("chunked accepted %v", values)
		}
		if _, err := NewAliasAug(values, w); err == nil {
			t.Fatalf("aliasaug accepted %v", values)
		}
		if _, err := NewNaive(values, w); err == nil {
			t.Fatalf("naive accepted %v", values)
		}
	}
	// Infinite weight.
	if _, err := NewChunked([]float64{1, 2}, []float64{1, math.Inf(1)}); err == nil {
		t.Fatal("infinite weight accepted")
	}
}

func TestInfiniteQueryBounds(t *testing.T) {
	// Open-sided queries via ±Inf must work (3-sided and unbounded).
	values, weights := makeDataset(50, 70)
	ck, err := NewChunked(values, weights)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(71)
	out, ok := ck.Query(r, iv(math.Inf(-1), math.Inf(1)), 100, nil)
	if !ok || len(out) != 100 {
		t.Fatalf("unbounded query: ok=%v len=%d", ok, len(out))
	}
	out, ok = ck.Query(r, iv(math.Inf(-1), 25), 50, nil)
	if !ok {
		t.Fatal("left-open query empty")
	}
	for _, pos := range out {
		if ck.Value(pos) > 25 {
			t.Fatalf("left-open sample %v > 25", ck.Value(pos))
		}
	}
}
