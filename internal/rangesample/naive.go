package rangesample

import (
	"repro/internal/rng"
)

// Naive is the baseline the paper argues against in Section 1: it
// retrieves the full query result S_q and then samples from it. Space is
// O(n); a query costs O(log n + |S_q| + s) time, which degrades linearly
// with the result size no matter how few samples are requested. It exists
// as the comparator for experiment E14.
type Naive struct {
	base
	// prefix[i] = total weight of positions [0, i); one extra slot.
	prefix []float64
}

// NewNaive builds the baseline structure.
func NewNaive(values, weights []float64) (*Naive, error) {
	b, err := newBase(values, weights)
	if err != nil {
		return nil, err
	}
	n := &Naive{base: b}
	n.prefix = make([]float64, len(n.values)+1)
	for i, w := range n.weights {
		n.prefix[i+1] = n.prefix[i] + w
	}
	return n, nil
}

// Query implements Sampler. To make the baseline honest, it materialises
// the result's weight vector (the O(|S_q|) "reporting" cost the paper
// says is unavoidable for this approach) and then draws s samples by
// inverse-CDF binary search over the materialised prefix sums.
func (nv *Naive) Query(r *rng.Source, q Interval, s int, dst []int) ([]int, bool) {
	a, b, ok := nv.posRange(q)
	if !ok {
		return dst, false
	}
	// "Report" the result: copy out the cumulative weights of S_q. This
	// pass is what the paper's IQS structures avoid.
	k := b - a + 1
	cum := make([]float64, k)
	run := 0.0
	for i := 0; i < k; i++ {
		run += nv.weights[a+i]
		cum[i] = run
	}
	total := cum[k-1]
	for i := 0; i < s; i++ {
		x := r.Float64() * total
		// Binary search for the first cum[j] > x.
		lo, hi := 0, k-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] > x {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		dst = append(dst, a+lo)
	}
	return dst, true
}

var _ Sampler = (*Naive)(nil)
