package rangesample

import (
	"repro/internal/rng"
	"repro/internal/scratch"
)

// Naive is the baseline the paper argues against in Section 1: it
// retrieves the full query result S_q and then samples from it. Space is
// O(n); a query costs O(log n + |S_q| + s) time, which degrades linearly
// with the result size no matter how few samples are requested. It exists
// as the comparator for experiment E14.
type Naive struct {
	base
	// prefix[i] = total weight of positions [0, i); one extra slot.
	prefix []float64
}

// NewNaive builds the baseline structure.
func NewNaive(values, weights []float64) (*Naive, error) {
	b, err := newBase(values, weights)
	if err != nil {
		return nil, err
	}
	n := &Naive{base: b}
	n.prefix = make([]float64, len(n.values)+1)
	for i, w := range n.weights {
		n.prefix[i+1] = n.prefix[i] + w
	}
	return n, nil
}

// Query implements Sampler. To make the baseline honest, it materialises
// the result's weight vector (the O(|S_q|) "reporting" cost the paper
// says is unavoidable for this approach) and then draws s samples by
// inverse-CDF binary search over the materialised prefix sums.
func (nv *Naive) Query(r *rng.Source, q Interval, s int, dst []int) ([]int, bool) {
	out, ok, _ := nv.QueryStop(nil, r, q, s, dst)
	return out, ok
}

// QueryScratch implements ScratchSampler.
func (nv *Naive) QueryScratch(r *rng.Source, q Interval, s int, dst []int, sc *scratch.Arena) ([]int, bool) {
	out, ok, _ := nv.QueryStopScratch(nil, r, q, s, dst, sc)
	return out, ok
}

// QueryStop implements StopSampler: the O(|S_q|) report pass and the
// O(s) draw loop both poll stop, so a canceled query returns within
// stopPollEvery iterations no matter how large the range is.
func (nv *Naive) QueryStop(stop func() bool, r *rng.Source, q Interval, s int, dst []int) ([]int, bool, error) {
	sc := scratch.Get()
	defer scratch.Put(sc)
	return nv.QueryStopScratch(stop, r, q, s, dst, sc)
}

// QueryStopScratch implements StopScratchSampler. The O(|S_q|) report
// buffer comes from the arena's Floats accessor, so its size tracks the
// largest range the arena has served (the baseline's inherent cost — the
// paper's IQS structures are what avoid it).
func (nv *Naive) QueryStopScratch(stop func() bool, r *rng.Source, q Interval, s int, dst []int, sc *scratch.Arena) ([]int, bool, error) {
	a, b, ok := nv.posRange(q)
	if !ok {
		return dst, false, nil
	}
	// "Report" the result: copy out the cumulative weights of S_q. This
	// pass is what the paper's IQS structures avoid.
	k := b - a + 1
	cum := sc.Floats(k)
	run := 0.0
	for i := 0; i < k; i++ {
		if stop != nil && i%stopPollEvery == 0 && stop() {
			return dst, false, ErrCanceled
		}
		run += nv.weights[a+i]
		cum[i] = run
	}
	total := cum[k-1]
	n := len(dst)
	for i := 0; i < s; i++ {
		if stop != nil && i%stopPollEvery == 0 && stop() {
			return dst[:n], false, ErrCanceled
		}
		x := r.Float64() * total
		// Binary search for the first cum[j] > x.
		lo, hi := 0, k-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] > x {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		dst = append(dst, a+lo)
	}
	return dst, true, nil
}

var _ StopSampler = (*Naive)(nil)
var _ StopScratchSampler = (*Naive)(nil)
var _ ScratchSampler = (*Naive)(nil)
