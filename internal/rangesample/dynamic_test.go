package rangesample

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestDynamicEmpty(t *testing.T) {
	d := NewDynamic(1)
	if d.Len() != 0 || d.TotalWeight() != 0 {
		t.Fatalf("Len/Total = %d/%v", d.Len(), d.TotalWeight())
	}
	r := rng.New(2)
	if _, ok := d.Query(r, iv(0, 1), 1, nil); ok {
		t.Fatal("query on empty structure returned ok")
	}
	if err := d.Delete(5); err != ErrNotFound {
		t.Fatalf("Delete on empty = %v", err)
	}
}

func TestDynamicInsertQueryDelete(t *testing.T) {
	d := NewDynamic(3)
	if err := d.Insert(1, 0); err != ErrBadWeight {
		t.Fatalf("zero weight accepted: %v", err)
	}
	for i := 0; i < 10; i++ {
		if err := d.Insert(float64(i), 1); err != nil {
			t.Fatal(err)
		}
	}
	if d.Len() != 10 {
		t.Fatalf("Len = %d", d.Len())
	}
	if got := d.Count(iv(2, 6)); got != 5 {
		t.Fatalf("Count = %d", got)
	}
	if got := d.RangeWeight(iv(2, 6)); math.Abs(got-5) > 1e-12 {
		t.Fatalf("RangeWeight = %v", got)
	}
	if err := d.Delete(4); err != nil {
		t.Fatal(err)
	}
	if got := d.Count(iv(2, 6)); got != 4 {
		t.Fatalf("Count after delete = %d", got)
	}
	if err := d.Delete(4); err != ErrNotFound {
		t.Fatalf("double delete = %v", err)
	}
}

func TestDynamicDistribution(t *testing.T) {
	d := NewDynamic(5)
	weights := []float64{1, 3, 2, 8, 1, 5, 4, 2}
	for i, w := range weights {
		if err := d.Insert(float64(i), w); err != nil {
			t.Fatal(err)
		}
	}
	r := rng.New(6)
	q := iv(1, 6) // elements 1..6
	total := 0.0
	for i := 1; i <= 6; i++ {
		total += weights[i]
	}
	const draws = 300000
	counts := make([]int, 6)
	out, ok := d.Query(r, q, draws, nil)
	if !ok {
		t.Fatal("query empty")
	}
	for _, v := range out {
		counts[int(v)-1]++
	}
	chi2 := 0.0
	for i := 0; i < 6; i++ {
		expected := draws * weights[i+1] / total
		diff := float64(counts[i]) - expected
		chi2 += diff * diff / expected
	}
	if chi2 > chi2Crit(5) {
		t.Fatalf("dynamic chi2 = %v (counts %v)", chi2, counts)
	}
}

func TestDynamicQueryPreservesStructure(t *testing.T) {
	// Query splits and re-merges the treap; repeated mixed operations
	// must keep it consistent.
	d := NewDynamic(7)
	r := rng.New(8)
	ref := map[float64]float64{}
	for i := 0; i < 500; i++ {
		v := float64(r.Intn(200))
		if _, exists := ref[v]; !exists {
			w := r.Float64() + 0.1
			if err := d.Insert(v, w); err != nil {
				t.Fatal(err)
			}
			ref[v] = w
		}
		if i%3 == 0 {
			d.Query(r, iv(float64(r.Intn(200)), float64(r.Intn(200))+20), 2, nil)
		}
		if i%7 == 0 && len(ref) > 0 {
			for v := range ref {
				if err := d.Delete(v); err != nil {
					t.Fatal(err)
				}
				delete(ref, v)
				break
			}
		}
	}
	if d.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", d.Len(), len(ref))
	}
	wantTotal := 0.0
	for _, w := range ref {
		wantTotal += w
	}
	if math.Abs(d.TotalWeight()-wantTotal) > 1e-6 {
		t.Fatalf("TotalWeight = %v, want %v", d.TotalWeight(), wantTotal)
	}
	// Count over the full domain must equal Len.
	if got := d.Count(iv(-1, 1000)); got != len(ref) {
		t.Fatalf("full Count = %d, want %d", got, len(ref))
	}
}

func TestDynamicSamplesWithinRange(t *testing.T) {
	d := NewDynamic(9)
	r := rng.New(10)
	for i := 0; i < 300; i++ {
		if err := d.Insert(float64(i), r.Float64()+0.1); err != nil {
			t.Fatal(err)
		}
	}
	f := func(loRaw, spanRaw uint16) bool {
		lo := float64(loRaw % 300)
		hi := lo + float64(spanRaw%300)
		out, ok := d.Query(r, iv(lo, hi), 4, nil)
		if !ok {
			return lo > 299 // only possible if range empty
		}
		for _, v := range out {
			if v < lo || v > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicDuplicates(t *testing.T) {
	d := NewDynamic(11)
	for i := 0; i < 3; i++ {
		if err := d.Insert(7, 1); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.Count(iv(7, 7)); got != 3 {
		t.Fatalf("Count = %d", got)
	}
	if err := d.Delete(7); err != nil {
		t.Fatal(err)
	}
	if got := d.Count(iv(7, 7)); got != 2 {
		t.Fatalf("Count after delete = %d", got)
	}
}

func TestDynamicMatchesStaticDistribution(t *testing.T) {
	// The dynamic structure must realise the same query distribution as
	// the static structures over the same data.
	const n = 32
	values, weights := makeDataset(n, 12)
	d := NewDynamic(13)
	for i := range values {
		if err := d.Insert(values[i], weights[i]); err != nil {
			t.Fatal(err)
		}
	}
	aa, err := NewAliasAug(values, weights)
	if err != nil {
		t.Fatal(err)
	}
	q := iv(4, 27)
	r := rng.New(14)
	const draws = 200000
	dynCounts := make([]int, n)
	statCounts := make([]int, n)
	dOut, _ := d.Query(r, q, draws, nil)
	for _, v := range dOut {
		dynCounts[int(v)]++
	}
	sOut, _ := aa.Query(r, q, draws, nil)
	for _, pos := range sOut {
		statCounts[int(aa.Value(pos))]++
	}
	// Compare the two empirical distributions via two-sample chi2.
	chi2 := 0.0
	dof := 0
	for i := 4; i <= 27; i++ {
		a, b := float64(dynCounts[i]), float64(statCounts[i])
		if a+b == 0 {
			continue
		}
		diff := a - b
		chi2 += diff * diff / (a + b)
		dof++
	}
	if chi2 > chi2Crit(dof-1) {
		t.Fatalf("dynamic vs static chi2 = %v (dof %d)", chi2, dof)
	}
}

func BenchmarkDynamicInsert(b *testing.B) {
	d := NewDynamic(1)
	r := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Insert(r.Float64(), 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDynamicQuery(b *testing.B) {
	d := NewDynamic(1)
	r := rng.New(2)
	for i := 0; i < 1<<17; i++ {
		if err := d.Insert(r.Float64(), r.Float64()+0.01); err != nil {
			b.Fatal(err)
		}
	}
	var dst []float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := r.Float64() * 0.5
		dst, _ = d.Query(r, iv(lo, lo+0.25), 16, dst[:0])
	}
}
