package rangesample

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestMergeIntervals(t *testing.T) {
	cases := []struct {
		in   []Interval
		want []Interval
	}{
		{nil, nil},
		{[]Interval{iv(3, 1)}, nil}, // inverted dropped
		{[]Interval{iv(1, 2)}, []Interval{iv(1, 2)}},
		{[]Interval{iv(5, 8), iv(1, 2)}, []Interval{iv(1, 2), iv(5, 8)}},
		{[]Interval{iv(1, 4), iv(3, 6)}, []Interval{iv(1, 6)}},
		{[]Interval{iv(1, 4), iv(4, 6)}, []Interval{iv(1, 6)}}, // touching merge
		{[]Interval{iv(1, 10), iv(2, 3)}, []Interval{iv(1, 10)}},
		{[]Interval{iv(1, 2), iv(2, 3), iv(5, 6), iv(9, 1)}, []Interval{iv(1, 3), iv(5, 6)}},
	}
	for _, c := range cases {
		got := MergeIntervals(c.in)
		if len(got) != len(c.want) {
			t.Fatalf("Merge(%v) = %v, want %v", c.in, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Merge(%v) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func TestQueryMultiDistribution(t *testing.T) {
	const n = 64
	values, weights := makeDataset(n, 55)
	ck, err := NewChunked(values, weights)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(56)
	// Two disjoint bands plus one overlapping the first.
	qs := []Interval{iv(5, 15), iv(40, 55), iv(10, 20)}
	inUnion := func(v float64) bool {
		return (v >= 5 && v <= 20) || (v >= 40 && v <= 55)
	}
	total := 0.0
	for i := 0; i < n; i++ {
		if inUnion(values[i]) {
			total += weights[i]
		}
	}
	const draws = 200000
	counts := make([]int, n)
	out, ok := QueryMulti(r, ck, qs, draws, nil)
	if !ok {
		t.Fatal("union empty")
	}
	if len(out) != draws {
		t.Fatalf("drew %d", len(out))
	}
	for _, pos := range out {
		v := ck.Value(pos)
		if !inUnion(v) {
			t.Fatalf("sampled %v outside union", v)
		}
		counts[int(v)]++
	}
	chi2 := 0.0
	dof := 0
	for i := 0; i < n; i++ {
		if !inUnion(values[i]) {
			continue
		}
		expected := draws * weights[i] / total
		diff := float64(counts[i]) - expected
		chi2 += diff * diff / expected
		dof++
	}
	if chi2 > chi2Crit(dof-1) {
		t.Fatalf("multi-range chi2 = %v", chi2)
	}
}

func TestQueryMultiEdgeCases(t *testing.T) {
	values, weights := makeDataset(32, 57)
	aa, err := NewAliasAug(values, weights)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(58)
	if _, ok := QueryMulti(r, aa, nil, 3, nil); ok {
		t.Fatal("no intervals returned ok")
	}
	if _, ok := QueryMulti(r, aa, []Interval{iv(100, 200)}, 3, nil); ok {
		t.Fatal("empty union returned ok")
	}
	// Single interval fast path.
	out, ok := QueryMulti(r, aa, []Interval{iv(5, 10)}, 7, nil)
	if !ok || len(out) != 7 {
		t.Fatalf("ok=%v len=%d", ok, len(out))
	}
}

func TestQueryMultiEqualsMergedSingle(t *testing.T) {
	// Union of overlapping intervals must equal one merged query.
	values, weights := makeDataset(48, 59)
	ck, err := NewChunked(values, weights)
	if err != nil {
		t.Fatal(err)
	}
	f := func(aRaw, bRaw, cRaw uint8) bool {
		a := float64(aRaw % 48)
		b := a + float64(bRaw%10)
		c := b - float64(cRaw%5) // overlaps [a,b]
		if c < a {
			c = a
		}
		r := rng.New(60)
		qs := []Interval{iv(a, b), iv(c, b+3)}
		out, ok := QueryMulti(r, ck, qs, 16, nil)
		if !ok {
			return true
		}
		for _, pos := range out {
			v := ck.Value(pos)
			if v < a || v > b+3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQueryMultiWeightConsistency(t *testing.T) {
	// Sum of merged RangeWeights equals brute-force union weight.
	values, weights := makeDataset(100, 61)
	ck, err := NewChunked(values, weights)
	if err != nil {
		t.Fatal(err)
	}
	qs := []Interval{iv(10, 30), iv(25, 50), iv(80, 90)}
	merged := MergeIntervals(qs)
	got := 0.0
	for _, q := range merged {
		got += ck.RangeWeight(q)
	}
	want := 0.0
	for i := 0; i < 100; i++ {
		v := values[i]
		if (v >= 10 && v <= 50) || (v >= 80 && v <= 90) {
			want += weights[i]
		}
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("union weight %v, want %v", got, want)
	}
}
