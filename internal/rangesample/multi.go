package rangesample

import (
	"sort"

	"repro/internal/alias"
	"repro/internal/rng"
)

// MultiSampler is implemented by structures that can answer weighted
// sampling over a union of intervals (disjunctive range predicates, e.g.
// "price in [10,20] OR [50,60]").
type MultiSampler interface {
	Sampler
	// RangeWeight returns the total weight of S ∩ q.
	RangeWeight(q Interval) float64
}

// QueryMulti draws s independent weighted samples from S ∩ (q₁ ∪ q₂ ∪
// ...), appending positions to dst. Overlapping and unsorted intervals
// are normalised first (sort + merge), so each element is counted once
// regardless of how many intervals cover it. ok is false when the union
// is empty.
//
// Cost: O(m log m) to normalise m intervals, O(m log n) for their
// weights, then the usual O(log n + s_i) per interval with samples
// distributed by an alias structure over the interval weights (the same
// Theorem 1 split used inside every cover-based query).
func QueryMulti(r *rng.Source, s MultiSampler, qs []Interval, count int, dst []int) ([]int, bool) {
	merged := MergeIntervals(qs)
	if len(merged) == 0 {
		return dst, false
	}
	weights := make([]float64, 0, len(merged))
	live := merged[:0]
	for _, q := range merged {
		w := s.RangeWeight(q)
		if w > 0 {
			weights = append(weights, w)
			live = append(live, q)
		}
	}
	if len(live) == 0 {
		return dst, false
	}
	if len(live) == 1 {
		return s.Query(r, live[0], count, dst)
	}
	counts := alias.MustNew(weights).Counts(r, count)
	for i, c := range counts {
		if c == 0 {
			continue
		}
		var ok bool
		dst, ok = s.Query(r, live[i], c, dst)
		if !ok {
			// Cannot happen: weight was positive.
			return dst, false
		}
	}
	return dst, true
}

// MergeIntervals sorts and merges overlapping or touching intervals,
// dropping inverted ones (Hi < Lo). The result is disjoint and ascending.
func MergeIntervals(qs []Interval) []Interval {
	valid := make([]Interval, 0, len(qs))
	for _, q := range qs {
		if q.Hi >= q.Lo {
			valid = append(valid, q)
		}
	}
	if len(valid) == 0 {
		return nil
	}
	sort.Slice(valid, func(a, b int) bool { return valid[a].Lo < valid[b].Lo })
	out := valid[:1]
	for _, q := range valid[1:] {
		last := &out[len(out)-1]
		if q.Lo <= last.Hi {
			if q.Hi > last.Hi {
				last.Hi = q.Hi
			}
			continue
		}
		out = append(out, q)
	}
	return out
}
