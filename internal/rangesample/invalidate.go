package rangesample

// CoverInvalidator is implemented by samplers that memoize canonical
// cover decompositions (the PR-5 LRU caches). The structures themselves
// are immutable — a cache entry can only go stale when a *caller*
// retires the structure from serving (snapshot swap) or starts serving
// a mutated dataset through a wrapper. Those callers invalidate on the
// way out so a stale decomposition can never be consulted again, even
// by code that incorrectly retains the retired structure.
type CoverInvalidator interface {
	InvalidateCovers()
}

// InvalidateCovers drops the chunk-partial alias cache and the top-tree
// cover cache.
func (ch *Chunked) InvalidateCovers() {
	ch.pcache.purge()
	ch.top.cache.purge()
}

// InvalidateCovers drops the cover-decomposition cache.
func (aa *AliasAug) InvalidateCovers() {
	aa.tree.cache.purge()
}

// InvalidateCovers drops the cover-decomposition cache (no-op on the
// uniform fast path, which caches nothing).
func (p *PosSampler) InvalidateCovers() {
	if p.tree != nil {
		p.tree.cache.purge()
	}
}
