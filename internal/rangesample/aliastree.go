package rangesample

import (
	"repro/internal/alias"
	"repro/internal/rng"
	"repro/internal/scratch"
)

// posTree is the engine behind Lemma 2: a balanced binary tree over
// positions 0..n-1 in which every node stores an alias structure
// (Theorem 1) over the weights of the positions it spans. Total space and
// build time are O(n log n) — each of the O(log n) levels holds aliases
// over n positions in aggregate.
//
// QueryPos answers "draw s independent weighted samples from positions
// [a, b]" in O(log n + s) time: O(log n) to collect the canonical cover
// and build a top-level alias over it, then O(1) per sample.
type posTree struct {
	weights []float64
	nodes   []posNode
	root    int32
}

type posNode struct {
	left, right int32 // -1 for leaves
	lo, hi      int32
	weight      float64
	al          *alias.Alias // nil for leaves
}

func newPosTree(weights []float64) *posTree {
	n := len(weights)
	if n == 0 {
		panic("rangesample: newPosTree on empty weights")
	}
	t := &posTree{
		weights: weights,
		nodes:   make([]posNode, 0, 2*n-1),
	}
	t.root = t.build(0, int32(n-1))
	return t
}

func (t *posTree) build(lo, hi int32) int32 {
	id := int32(len(t.nodes))
	if lo == hi {
		t.nodes = append(t.nodes, posNode{
			left: -1, right: -1, lo: lo, hi: hi, weight: t.weights[lo],
		})
		return id
	}
	t.nodes = append(t.nodes, posNode{lo: lo, hi: hi})
	mid := lo + (hi-lo)/2
	l := t.build(lo, mid)
	rt := t.build(mid+1, hi)
	nd := &t.nodes[id]
	nd.left, nd.right = l, rt
	nd.weight = t.nodes[l].weight + t.nodes[rt].weight
	nd.al = alias.MustNew(t.weights[lo : hi+1])
	return id
}

// cover appends the canonical node ids for positions [a, b].
func (t *posTree) cover(id int32, a, b int32, dst []int32) []int32 {
	nd := &t.nodes[id]
	if a <= nd.lo && nd.hi <= b {
		return append(dst, id)
	}
	if nd.hi < a || b < nd.lo {
		return dst
	}
	dst = t.cover(nd.left, a, b, dst)
	return t.cover(nd.right, a, b, dst)
}

// rangeWeight returns the total weight of positions [a, b] in O(log n).
func (t *posTree) rangeWeight(a, b int) float64 {
	var scratch [64]int32
	cov := t.cover(t.root, int32(a), int32(b), scratch[:0])
	sum := 0.0
	for _, id := range cov {
		sum += t.nodes[id].weight
	}
	return sum
}

// queryPos appends s independent weighted samples from positions [a, b]
// to dst. Panics if the range is out of bounds.
func (t *posTree) queryPos(r *rng.Source, a, b, s int, dst []int) []int {
	var sc scratch.Arena
	return t.queryPosScratch(r, a, b, s, dst, &sc)
}

// queryPosScratch is queryPos with the canonical-cover weight vector and
// top-level alias drawn from sc (Weights and Alias accessors).
func (t *posTree) queryPosScratch(r *rng.Source, a, b, s int, dst []int, sc *scratch.Arena) []int {
	if a < 0 || b >= len(t.weights) || a > b {
		panic("rangesample: queryPos range out of bounds")
	}
	var covBuf [64]int32
	cov := t.cover(t.root, int32(a), int32(b), covBuf[:0])
	if len(cov) == 1 {
		// Single canonical node: sample directly from its alias.
		nd := &t.nodes[cov[0]]
		for i := 0; i < s; i++ {
			dst = append(dst, int(nd.lo)+t.sampleNode(r, nd))
		}
		return dst
	}
	covWeights := sc.Weights(len(cov))
	for i, id := range cov {
		covWeights[i] = t.nodes[id].weight
	}
	top := sc.Alias().MustRebuild(covWeights)
	for i := 0; i < s; i++ {
		nd := &t.nodes[cov[top.Sample(r)]]
		dst = append(dst, int(nd.lo)+t.sampleNode(r, nd))
	}
	return dst
}

// sampleNode draws a position offset within nd's span via its alias (or
// 0 for a leaf).
func (t *posTree) sampleNode(r *rng.Source, nd *posNode) int {
	if nd.al == nil {
		return 0
	}
	return nd.al.Sample(r)
}

// AliasAug is the Lemma 2 structure ("alias augmentation", §4.1):
// a BST over the sorted values in which every node is augmented with an
// alias structure on its subtree's elements. Space O(n log n), build
// O(n log n), query O(log n + s).
type AliasAug struct {
	base
	tree *posTree
}

// NewAliasAug builds the structure over values and weights.
func NewAliasAug(values, weights []float64) (*AliasAug, error) {
	b, err := newBase(values, weights)
	if err != nil {
		return nil, err
	}
	return &AliasAug{base: b, tree: newPosTree(b.weights)}, nil
}

// Query implements Sampler.
func (aa *AliasAug) Query(r *rng.Source, q Interval, s int, dst []int) ([]int, bool) {
	a, b, ok := aa.posRange(q)
	if !ok {
		return dst, false
	}
	return aa.tree.queryPos(r, a, b, s, dst), true
}

// QueryScratch implements ScratchSampler.
func (aa *AliasAug) QueryScratch(r *rng.Source, q Interval, s int, dst []int, sc *scratch.Arena) ([]int, bool) {
	a, b, ok := aa.posRange(q)
	if !ok {
		return dst, false
	}
	return aa.tree.queryPosScratch(r, a, b, s, dst, sc), true
}

// RangeWeight returns the total weight of S ∩ q in O(log n); 0 when
// empty. Exposed for estimation examples.
func (aa *AliasAug) RangeWeight(q Interval) float64 {
	a, b, ok := aa.posRange(q)
	if !ok {
		return 0
	}
	return aa.tree.rangeWeight(a, b)
}

var _ Sampler = (*AliasAug)(nil)
var _ ScratchSampler = (*AliasAug)(nil)
