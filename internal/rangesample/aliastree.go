package rangesample

import (
	"repro/internal/alias"
	"repro/internal/rng"
	"repro/internal/scratch"
)

// posTree is the engine behind Lemma 2: a balanced binary tree over
// positions 0..n-1 in which every node stores an alias structure
// (Theorem 1) over the weights of the positions it spans. Total space and
// build time are O(n log n) — each of the O(log n) levels holds aliases
// over n positions in aggregate.
//
// QueryPos answers "draw s independent weighted samples from positions
// [a, b]" in O(log n + s) time: O(log n) to collect the canonical cover
// and build a top-level alias over it, then O(1) per sample.
type posTree struct {
	weights []float64
	nodes   []posNode
	root    int32
	// cache memoizes canonical-cover decompositions per query range;
	// it lives and dies with this immutable tree instance.
	cache *coverCache
}

// bulkRangeWords sizes the arena word buffers the range-sampling bulk
// loops stage raw variates through between Block refills (sc.Words —
// never the stack, see scratch.Arena.Words).
const bulkRangeWords = 256

type posNode struct {
	left, right int32 // -1 for leaves
	lo, hi      int32
	weight      float64
	al          *alias.Alias // nil for leaves
}

func newPosTree(weights []float64) *posTree {
	n := len(weights)
	if n == 0 {
		panic("rangesample: newPosTree on empty weights")
	}
	t := &posTree{
		weights: weights,
		nodes:   make([]posNode, 0, 2*n-1),
		cache:   newCoverCache(defaultCoverCacheCap),
	}
	t.root = t.build(0, int32(n-1))
	return t
}

func (t *posTree) build(lo, hi int32) int32 {
	id := int32(len(t.nodes))
	if lo == hi {
		t.nodes = append(t.nodes, posNode{
			left: -1, right: -1, lo: lo, hi: hi, weight: t.weights[lo],
		})
		return id
	}
	t.nodes = append(t.nodes, posNode{lo: lo, hi: hi})
	mid := lo + (hi-lo)/2
	l := t.build(lo, mid)
	rt := t.build(mid+1, hi)
	nd := &t.nodes[id]
	nd.left, nd.right = l, rt
	nd.weight = t.nodes[l].weight + t.nodes[rt].weight
	nd.al = alias.MustNew(t.weights[lo : hi+1])
	return id
}

// cover appends the canonical node ids for positions [a, b].
func (t *posTree) cover(id int32, a, b int32, dst []int32) []int32 {
	nd := &t.nodes[id]
	if a <= nd.lo && nd.hi <= b {
		return append(dst, id)
	}
	if nd.hi < a || b < nd.lo {
		return dst
	}
	dst = t.cover(nd.left, a, b, dst)
	return t.cover(nd.right, a, b, dst)
}

// rangeWeight returns the total weight of positions [a, b] in O(log n).
func (t *posTree) rangeWeight(a, b int) float64 {
	var scratch [64]int32
	cov := t.cover(t.root, int32(a), int32(b), scratch[:0])
	sum := 0.0
	for _, id := range cov {
		sum += t.nodes[id].weight
	}
	return sum
}

// queryPos appends s independent weighted samples from positions [a, b]
// to dst. Panics if the range is out of bounds.
func (t *posTree) queryPos(r *rng.Source, a, b, s int, dst []int) []int {
	sc := scratch.Get()
	defer scratch.Put(sc)
	return t.queryPosScratch(r, a, b, s, dst, sc)
}

// queryPosScratch is queryPos with the canonical-cover decomposition
// served from the tree's LRU cache (hot ranges skip the cover walk and
// top-alias build entirely) and the samples drawn through bulk kernels.
// Stream-identical to the scalar loop: the cover walk and alias build
// consume no randomness, the cached top alias has the same table a
// fresh build would, and the Block supplies words in generation order.
func (t *posTree) queryPosScratch(r *rng.Source, a, b, s int, dst []int, sc *scratch.Arena) []int {
	if a < 0 || b >= len(t.weights) || a > b {
		panic("rangesample: queryPos range out of bounds")
	}
	e := t.cache.get(packRange(a, b))
	if e == nil {
		e = t.cache.put(t.buildCoverEntry(a, b, sc))
	}
	cov := e.cov
	if len(cov) == 1 {
		// Single canonical node: sample directly from its alias.
		nd := &t.nodes[cov[0]]
		if nd.al == nil {
			for i := 0; i < s; i++ {
				dst = append(dst, int(nd.lo))
			}
			return dst
		}
		return nd.al.SampleBulk(r, s, int(nd.lo), dst)
	}
	top := e.al
	bk := rng.MakeBlock(r, sc.Words(bulkRangeWords))
	for done := 0; done < s; {
		chunk := s - done
		if chunk > bulkRangeWords/e.minRaw {
			chunk = bulkRangeWords / e.minRaw
		}
		bk.Prime(e.minRaw * chunk)
		for i := 0; i < chunk; i++ {
			nd := &t.nodes[cov[top.SampleBlock(&bk)]]
			if nd.al != nil {
				dst = append(dst, int(nd.lo)+nd.al.SampleBlock(&bk))
			} else {
				dst = append(dst, int(nd.lo))
			}
		}
		done += chunk
	}
	return dst
}

// buildCoverEntry computes the canonical cover of [a, b] and, for
// multi-node covers, an owning top-level alias over the cover weights
// (alias.New and the arena builder produce identical tables, so cached
// and per-query aliases are draw-for-draw interchangeable). minRaw is
// the guaranteed-minimum raw-word consumption per sample: two for the
// top-level pick, plus two more only when every cover node is internal
// (leaf nodes consume no further randomness).
func (t *posTree) buildCoverEntry(a, b int, sc *scratch.Arena) *coverEntry {
	var covBuf [64]int32
	c := t.cover(t.root, int32(a), int32(b), covBuf[:0])
	cov := make([]int32, len(c))
	copy(cov, c)
	e := &coverEntry{key: packRange(a, b), cov: cov}
	if len(cov) > 1 {
		covWeights := sc.Weights(len(cov))
		for i, id := range cov {
			covWeights[i] = t.nodes[id].weight
		}
		e.al = alias.MustNew(covWeights)
		e.minRaw = 4
		for _, id := range cov {
			if t.nodes[id].al == nil {
				e.minRaw = 2
				break
			}
		}
	}
	return e
}

// sampleNode draws a position offset within nd's span via its alias (or
// 0 for a leaf).
func (t *posTree) sampleNode(r *rng.Source, nd *posNode) int {
	if nd.al == nil {
		return 0
	}
	return nd.al.Sample(r)
}

// AliasAug is the Lemma 2 structure ("alias augmentation", §4.1):
// a BST over the sorted values in which every node is augmented with an
// alias structure on its subtree's elements. Space O(n log n), build
// O(n log n), query O(log n + s).
type AliasAug struct {
	base
	tree *posTree
}

// NewAliasAug builds the structure over values and weights.
func NewAliasAug(values, weights []float64) (*AliasAug, error) {
	b, err := newBase(values, weights)
	if err != nil {
		return nil, err
	}
	return &AliasAug{base: b, tree: newPosTree(b.weights)}, nil
}

// Query implements Sampler.
func (aa *AliasAug) Query(r *rng.Source, q Interval, s int, dst []int) ([]int, bool) {
	a, b, ok := aa.posRange(q)
	if !ok {
		return dst, false
	}
	return aa.tree.queryPos(r, a, b, s, dst), true
}

// QueryScratch implements ScratchSampler.
func (aa *AliasAug) QueryScratch(r *rng.Source, q Interval, s int, dst []int, sc *scratch.Arena) ([]int, bool) {
	a, b, ok := aa.posRange(q)
	if !ok {
		return dst, false
	}
	return aa.tree.queryPosScratch(r, a, b, s, dst, sc), true
}

// RangeWeight returns the total weight of S ∩ q in O(log n); 0 when
// empty. Exposed for estimation examples.
func (aa *AliasAug) RangeWeight(q Interval) float64 {
	a, b, ok := aa.posRange(q)
	if !ok {
		return 0
	}
	return aa.tree.rangeWeight(a, b)
}

var _ Sampler = (*AliasAug)(nil)
var _ ScratchSampler = (*AliasAug)(nil)
