package rangesample

import (
	"repro/internal/rng"
	"repro/internal/scratch"
)

// PosSampler answers position-range IQS queries over a fixed weighted
// sequence: given [a, b] and s, it draws s independent weighted samples
// from positions a..b. It is the engine behind Lemma 4 of the paper (the
// element-aligned weighted range sampling used by tree sampling and by
// the Theorem 5/6 coverage machinery), where the caller already knows the
// position range and no value binary-search is needed.
//
// Complexity: for uniform weights (the WR regime of Lemma 4) a query is
// answered in exactly O(1+s) time by direct position arithmetic; for
// general weights it runs in O(log n + s) via the Lemma 2 alias tree.
// DESIGN.md records this as substitution 1: the O(1+s) weighted bound of
// Afshani–Wei is replaced by O(log n + s), which leaves every downstream
// theorem's headline bound unchanged (all covers in this repository have
// size Ω(log n) or use uniform weights).
type PosSampler struct {
	weights   []float64
	tree      *posTree // nil when weights are uniform
	prefix    []float64
	isUniform bool
}

// NewPosSampler builds the structure over the sequence's weights.
// Panics on empty or non-positive input (internal engine; public
// constructors validate earlier).
func NewPosSampler(weights []float64) *PosSampler {
	if len(weights) == 0 {
		panic("rangesample: NewPosSampler on empty weights")
	}
	p := &PosSampler{weights: weights, isUniform: true}
	for _, w := range weights {
		if !(w > 0) {
			panic("rangesample: NewPosSampler with non-positive weight")
		}
		if w != weights[0] {
			p.isUniform = false
		}
	}
	if p.isUniform {
		return p
	}
	p.tree = newPosTree(weights)
	p.prefix = make([]float64, len(weights)+1)
	for i, w := range weights {
		p.prefix[i+1] = p.prefix[i] + w
	}
	return p
}

// Len returns the sequence length.
func (p *PosSampler) Len() int { return len(p.weights) }

// Uniform reports whether the fast O(1+s) uniform path is active.
func (p *PosSampler) Uniform() bool { return p.isUniform }

// Query appends s independent weighted samples from positions [a, b].
func (p *PosSampler) Query(r *rng.Source, a, b, s int, dst []int) []int {
	if a < 0 || b >= len(p.weights) || a > b {
		panic("rangesample: PosSampler query out of range")
	}
	if p.isUniform {
		span := b - a + 1
		for i := 0; i < s; i++ {
			dst = append(dst, a+r.Intn(span))
		}
		return dst
	}
	return p.tree.queryPos(r, a, b, s, dst)
}

// QueryScratch is Query with temporaries drawn from sc; the uniform fast
// path needs none, the weighted path reuses the arena for its cover
// alias.
func (p *PosSampler) QueryScratch(r *rng.Source, a, b, s int, dst []int, sc *scratch.Arena) []int {
	if a < 0 || b >= len(p.weights) || a > b {
		panic("rangesample: PosSampler query out of range")
	}
	if p.isUniform {
		span := b - a + 1
		for i := 0; i < s; i++ {
			dst = append(dst, a+r.Intn(span))
		}
		return dst
	}
	return p.tree.queryPosScratch(r, a, b, s, dst, sc)
}

// RangeWeight returns the total weight of positions [a, b] in O(1).
func (p *PosSampler) RangeWeight(a, b int) float64 {
	if a > b {
		return 0
	}
	if p.isUniform {
		return float64(b-a+1) * p.weights[0]
	}
	return p.prefix[b+1] - p.prefix[a]
}

// Weight returns the weight at position i.
func (p *PosSampler) Weight(i int) float64 { return p.weights[i] }
