package rangesample

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/rng"
	"repro/internal/scratch"
)

// hammered adapts each CoverInvalidator implementation to one query
// shape for the invalidation hammer (PosSampler queries by position,
// the value-range samplers by interval; both return sorted positions).
type hammered struct {
	CoverInvalidator
	query func(r *rng.Source, q Interval, s int, dst []int, sc *scratch.Arena) []int
	hits  func() uint64
}

// TestInvalidateCoversConcurrentWithQueries hammers InvalidateCovers —
// the retire step a snapshot swap runs on the outgoing structure —
// while queriers keep sampling through the same structure, for every
// CoverInvalidator implementation. The swap path gives no quiescence
// guarantee: in-flight requests may still be walking the structure when
// the purge lands, so a purge racing a cache fill must neither corrupt
// the cache (stale or cross-wired decompositions) nor the results.
// Every sampled position must stay inside the queried range, and the
// cache must function (record hits) again after the last purge.
func TestInvalidateCoversConcurrentWithQueries(t *testing.T) {
	n := 2048
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := range values {
		values[i] = float64(i) + 0.5
		weights[i] = float64(1 + (i*5)%11)
	}
	chunked, err := NewChunked(values, weights)
	if err != nil {
		t.Fatal(err)
	}
	aliasAug, err := NewAliasAug(values, weights)
	if err != nil {
		t.Fatal(err)
	}
	pos := NewPosSampler(weights)
	posQuery := func(r *rng.Source, q Interval, s int, dst []int, sc *scratch.Arena) []int {
		// Positions are the values' indexes here (value i+0.5 sits at
		// position i), so the interval maps to [⌈Lo⌉, ⌊Hi⌋].
		return pos.QueryScratch(r, int(q.Lo+0.5), int(q.Hi-0.5), s, dst, sc)
	}
	subjects := map[string]hammered{
		"chunked": {chunked, func(r *rng.Source, q Interval, s int, dst []int, sc *scratch.Arena) []int {
			out, _ := chunked.QueryScratch(r, q, s, dst, sc)
			return out
		}, func() uint64 { h, _ := chunked.top.cache.Stats(); return h }},
		"aliasaug": {aliasAug, func(r *rng.Source, q Interval, s int, dst []int, sc *scratch.Arena) []int {
			out, _ := aliasAug.QueryScratch(r, q, s, dst, sc)
			return out
		}, func() uint64 { h, _ := aliasAug.tree.cache.Stats(); return h }},
		"possampler": {pos, posQuery, func() uint64 {
			if pos.tree == nil {
				return 0
			}
			h, _ := pos.tree.cache.Stats()
			return h
		}},
	}
	for name, s := range subjects {
		name, s := name, s
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			var wg sync.WaitGroup
			var stop atomic.Bool
			// Queriers rotate through ranges wide and narrow enough to
			// exercise both the top cover cache and the partial-chunk
			// path, checking the support invariant on every draw.
			ranges := []Interval{
				{Lo: 7.5, Hi: 15.5},
				{Lo: 100.5, Hi: 1800.5},
				{Lo: 512.5, Hi: 520.5},
				{Lo: 0.5, Hi: float64(n) - 0.5},
			}
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					r := rng.New(seed)
					var sc scratch.Arena
					var dst []int
					for !stop.Load() {
						q := ranges[int(r.Uint64()%uint64(len(ranges)))]
						dst = s.query(r, q, 24, dst[:0], &sc)
						for _, p := range dst {
							if v := values[p]; v < q.Lo || v > q.Hi {
								t.Errorf("%s: position %d (value %v) outside [%v, %v] during invalidation", name, p, v, q.Lo, q.Hi)
								stop.Store(true)
								return
							}
						}
					}
				}(uint64(g) + 1)
			}
			// The invalidator: the swap's retire step, repeatedly, with
			// no coordination with the queriers — exactly the ordering
			// the service's snapshot swap produces when a request holds
			// the outgoing snapshot across the purge.
			for i := 0; i < 400 && !stop.Load(); i++ {
				s.InvalidateCovers()
			}
			stop.Store(true)
			wg.Wait()
			if t.Failed() {
				return
			}
			// The caches must still be live after the final purge: a
			// warm pass over a fixed range has to record fresh hits.
			before := s.hits()
			r := rng.New(99)
			var sc scratch.Arena
			for i := 0; i < 8; i++ {
				s.query(r, Interval{Lo: 100.5, Hi: 1800.5}, 16, nil, &sc)
			}
			if s.hits() <= before {
				t.Fatalf("%s: cover cache recorded no hits after the purge storm", name)
			}
		})
	}
}
