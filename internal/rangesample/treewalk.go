package rangesample

import (
	"repro/internal/bst"
	"repro/internal/rng"
	"repro/internal/scratch"
)

// TreeWalk is the Section 3.2 structure: a weight-augmented BST where a
// sample is drawn by (1) picking a canonical node of the query with
// probability proportional to its subtree weight and (2) walking top-down
// from that node, descending into children with probability proportional
// to their subtree weights.
//
// Space O(n); query time O(log n) per sample, i.e. O((1+s)·log n) for s
// samples. AliasAug and Chunked improve the per-sample cost to O(1); this
// structure is their natural comparator (experiment E2).
type TreeWalk struct {
	tree *bst.Tree
}

// NewTreeWalk builds the structure over values and weights.
func NewTreeWalk(values, weights []float64) (*TreeWalk, error) {
	t, err := bst.New(values, weights)
	if err != nil {
		if err == bst.ErrEmpty {
			return nil, ErrEmpty
		}
		if err == bst.ErrBadWeight {
			return nil, ErrBadWeight
		}
		return nil, err
	}
	return &TreeWalk{tree: t}, nil
}

// Len implements Sampler.
func (t *TreeWalk) Len() int { return t.tree.Len() }

// Value implements Sampler.
func (t *TreeWalk) Value(i int) float64 { return t.tree.Value(i) }

// Weight implements Sampler.
func (t *TreeWalk) Weight(i int) float64 { return t.tree.LeafWeight(i) }

// Query implements Sampler.
func (t *TreeWalk) Query(r *rng.Source, q Interval, s int, dst []int) ([]int, bool) {
	sc := scratch.Get()
	defer scratch.Put(sc)
	return t.QueryScratch(r, q, s, dst, sc)
}

// QueryScratch implements ScratchSampler.
func (t *TreeWalk) QueryScratch(r *rng.Source, q Interval, s int, dst []int, sc *scratch.Arena) ([]int, bool) {
	var covBuf [64]bst.NodeID
	cov := t.tree.CoverInterval(q, covBuf[:0])
	if len(cov) == 0 {
		return dst, false
	}
	// Distribute the s samples over the canonical nodes with an alias
	// structure built on the fly (Theorem 1), exactly as in §3.2/§4.1.
	covWeights := sc.Weights(len(cov))
	for i, id := range cov {
		covWeights[i] = t.tree.Weight(id)
	}
	top := sc.Alias().MustRebuild(covWeights)
	for i := 0; i < s; i++ {
		node := cov[top.Sample(r)]
		dst = append(dst, t.tree.SampleLeaf(r, node))
	}
	return dst, true
}

var _ Sampler = (*TreeWalk)(nil)
var _ ScratchSampler = (*TreeWalk)(nil)
