package rangesample

import (
	"sync"
	"testing"

	"repro/internal/rng"
)

// TestConcurrentReaders verifies the documented guarantee that static
// samplers are safe for concurrent queries as long as each goroutine
// brings its own *rng.Source. Run with -race to make this meaningful.
func TestConcurrentReaders(t *testing.T) {
	values, weights := makeDataset(4096, 77)
	samplers := map[string]Sampler{}
	{
		aa, err := NewAliasAug(values, weights)
		if err != nil {
			t.Fatal(err)
		}
		ck, err := NewChunked(values, weights)
		if err != nil {
			t.Fatal(err)
		}
		tw, err := NewTreeWalk(values, weights)
		if err != nil {
			t.Fatal(err)
		}
		samplers["aliasaug"], samplers["chunked"], samplers["treewalk"] = aa, ck, tw
	}
	for name, s := range samplers {
		s := s
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			errs := make(chan string, 8)
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					r := rng.New(seed)
					var dst []int
					for i := 0; i < 500; i++ {
						lo := float64(r.Intn(4000))
						q := iv(lo, lo+64)
						var ok bool
						dst, ok = s.Query(r, q, 8, dst[:0])
						if !ok {
							continue
						}
						for _, pos := range dst {
							if v := s.Value(pos); v < lo || v > lo+64 {
								errs <- "sample out of range"
								return
							}
						}
					}
				}(uint64(1000 + g))
			}
			wg.Wait()
			close(errs)
			for e := range errs {
				t.Fatal(e)
			}
		})
	}
}
