package rangesample

import (
	"sync"
	"testing"

	"repro/internal/race"
	"repro/internal/rng"
)

// The Dynamic read paths (Query, Sample, RangeWeight, Count,
// SelectInRange, Walk) are specified non-mutating so concurrent readers
// may share one instance; writers need external exclusion. These tests
// run the contract under -race: the pre-PR-7 implementation carved the
// queried subtreap out with split/merge on every read, which the
// detector flags immediately with two concurrent readers.

func buildDynamic(tb testing.TB, n int) *Dynamic {
	tb.Helper()
	d := NewDynamic(1)
	for i := 0; i < n; i++ {
		if err := d.Insert(float64(i), float64(1+i%5)); err != nil {
			tb.Fatalf("insert: %v", err)
		}
	}
	return d
}

func TestDynamicConcurrentReaders(t *testing.T) {
	d := buildDynamic(t, 512)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.New(seed)
			buf := make([]float64, 0, 16)
			for i := 0; i < 400; i++ {
				lo := float64(r.Intn(500))
				q := Interval{Lo: lo, Hi: lo + 12}
				buf = buf[:0]
				out, ok := d.Query(r, q, 8, buf)
				if ok {
					for _, v := range out {
						if v < q.Lo || v > q.Hi {
							t.Errorf("sample %v outside [%v, %v]", v, q.Lo, q.Hi)
							return
						}
					}
				}
				if w := d.RangeWeight(q); w < 0 {
					t.Errorf("negative range weight %v", w)
					return
				}
				if c := d.Count(q); c > 0 {
					if _, ok := d.SelectInRange(q, c-1); !ok {
						t.Errorf("SelectInRange(%d) missing with count %d", c-1, c)
						return
					}
				}
			}
		}(uint64(g + 2))
	}
	wg.Wait()
}

// TestDynamicReadersWithExclusiveWriter interleaves reader bursts with
// writer bursts under the documented discipline (an RWMutex), the exact
// shape internal/ingest uses. Under -race this verifies the pairing is
// sufficient — i.e. reads really touch no shared mutable state beyond
// what the lock covers.
func TestDynamicReadersWithExclusiveWriter(t *testing.T) {
	d := buildDynamic(t, 256)
	var mu sync.RWMutex
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.New(seed)
			buf := make([]float64, 0, 8)
			for {
				select {
				case <-stop:
					return
				default:
				}
				mu.RLock()
				lo := float64(r.Intn(200))
				buf = buf[:0]
				d.Query(r, Interval{Lo: lo, Hi: lo + 20}, 4, buf)
				d.Count(Interval{Lo: lo, Hi: lo + 20})
				mu.RUnlock()
			}
		}(uint64(g + 11))
	}
	wr := rng.New(99)
	for i := 0; i < 2000; i++ {
		mu.Lock()
		if wr.Bernoulli(0.6) {
			d.Insert(wr.Float64()*256, 1+wr.Float64())
		} else if d.Len() > 1 {
			d.Delete(float64(wr.Intn(256)))
		}
		mu.Unlock()
	}
	close(stop)
	wg.Wait()
}

// TestDynamicSelectInRange pins the order-statistics hook: ranks
// enumerate the in-range elements in ascending order, out-of-range
// ranks report !ok.
func TestDynamicSelectInRange(t *testing.T) {
	d := NewDynamic(7)
	vals := []float64{5, 1, 9, 3, 7, 3, 8}
	for _, v := range vals {
		if err := d.Insert(v, 1); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	q := Interval{Lo: 2, Hi: 8}
	want := []float64{3, 3, 5, 7, 8}
	if c := d.Count(q); c != len(want) {
		t.Fatalf("Count = %d, want %d", c, len(want))
	}
	for i, wv := range want {
		got, ok := d.SelectInRange(q, i)
		if !ok || got != wv {
			t.Fatalf("SelectInRange(%d) = %v, %v; want %v", i, got, ok, wv)
		}
	}
	if _, ok := d.SelectInRange(q, len(want)); ok {
		t.Fatal("rank past count reported ok")
	}
	if _, ok := d.SelectInRange(q, -1); ok {
		t.Fatal("negative rank reported ok")
	}
}

// TestDynamicQueryZeroAlloc pins the Into convention: with a warm
// caller buffer, Query allocates nothing per call.
func TestDynamicQueryZeroAlloc(t *testing.T) {
	d := buildDynamic(t, 1024)
	r := rng.New(3)
	buf := make([]float64, 0, 32)
	q := Interval{Lo: 100, Hi: 900}
	fn := func() {
		buf = buf[:0]
		var ok bool
		buf, ok = d.Query(r, q, 16, buf)
		if !ok {
			panic("empty range")
		}
	}
	fn()
	if race.Enabled {
		t.Log("race build, allocation count not asserted")
		return
	}
	if got := testing.AllocsPerRun(200, fn); got > 0 {
		t.Errorf("Query: %v allocs/op, want 0", got)
	}
}

// TestDynamicWalkOrdered pins Walk's ascending order and completeness.
func TestDynamicWalkOrdered(t *testing.T) {
	d := buildDynamic(t, 64)
	prev := -1.0
	n := 0
	var total float64
	d.Walk(func(v, w float64) {
		if v < prev {
			t.Fatalf("walk out of order: %v after %v", v, prev)
		}
		prev = v
		total += w
		n++
	})
	if n != d.Len() {
		t.Fatalf("walk visited %d of %d", n, d.Len())
	}
	if total != d.TotalWeight() {
		t.Fatalf("walk weight %v vs total %v", total, d.TotalWeight())
	}
}
