// Package rangesample implements independent query sampling (IQS) for
// one-dimensional weighted range queries — the running problem of the
// paper's Sections 3–4.
//
// Problem (Weighted Range Sampling, §3.2): the input S is a set of n real
// values, each with a positive weight. Given an interval q = [x, y] and an
// integer s ≥ 1, a query returns s independent weighted samples from
// S_q := q ∩ S, and the outputs of all queries are mutually independent.
//
// The package provides five interchangeable structures, mirroring the
// paper's development:
//
//	Naive     report-then-sample baseline: O(n) space, O(log n + |S_q| + s) query
//	TreeWalk  §3.2 tree sampling: O(n) space, O((1+s)·log n) query
//	AliasAug  Lemma 2 (alias augmentation): O(n log n) space, O(log n + s) query
//	Chunked   Theorem 3 (chunking): O(n) space, O(log n + s) query
//	Dynamic   updatable structure (Hu et al. direction): O(log n) updates,
//	          O((1+s)·log n) query
//
// All structures answer the same query distribution exactly (not
// approximately), and every query consumes fresh randomness from the
// caller's *rng.Source, which is what delivers cross-query independence
// (Equation 1 of the paper).
//
// Samples are returned as positions into the sorted order of S; translate
// to values with Value(pos).
package rangesample

import (
	"errors"
	"math"
	"sort"

	"repro/internal/bst"
	"repro/internal/rng"
	"repro/internal/scratch"
)

// Interval is re-exported from internal/bst for convenience: the closed
// query interval [Lo, Hi].
type Interval = bst.Interval

// ErrEmpty is returned when a structure is built over no elements.
var ErrEmpty = errors.New("rangesample: empty input")

// ErrBadWeight is returned for non-positive or non-finite weights.
var ErrBadWeight = errors.New("rangesample: weights must be positive and finite")

// ErrBadValue is returned for NaN or infinite values, which would
// silently corrupt the sorted order every structure depends on.
var ErrBadValue = errors.New("rangesample: values must be finite")

// ErrCanceled is returned by the stop-aware entry points (StopSampler,
// NewChunkedStop) when the caller's stop predicate fired mid-operation.
var ErrCanceled = errors.New("rangesample: operation canceled")

// Sampler is the common query interface of all structures in this
// package.
type Sampler interface {
	// Query appends s independent weighted samples from S ∩ q to dst as
	// positions into the sorted order, returning the extended slice. The
	// boolean is false (and dst unchanged) when S ∩ q is empty.
	Query(r *rng.Source, q Interval, s int, dst []int) ([]int, bool)
	// Len returns the number of stored elements.
	Len() int
	// Value returns the i-th smallest stored value.
	Value(i int) float64
	// Weight returns the weight of the i-th smallest stored value.
	Weight(i int) float64
}

// StopSampler is implemented by structures whose query contains long
// data-dependent loops (the Naive report pass scans all of S ∩ q) and
// that therefore poll a stop predicate cooperatively inside those loops.
// stop may be nil (never stops); when it fires the query returns
// ErrCanceled with dst unchanged. Structures with O(log n + s) queries
// don't implement this — their callers bound latency by batching s.
type StopSampler interface {
	Sampler
	// QueryStop is Query polling stop() every stopPollEvery iterations.
	QueryStop(stop func() bool, r *rng.Source, q Interval, s int, dst []int) ([]int, bool, error)
}

// ScratchSampler is implemented by structures whose query runs
// allocation-free given a caller-owned scratch arena: the on-the-fly
// alias builds over canonical covers and partial chunks, and the cover
// weight vectors, live in the arena instead of fresh heap slices.
// QueryScratch consumes randomness identically to Query, so for the
// same *rng.Source state both produce the same samples. The arena is
// single-goroutine state; see scratch.Arena for the ownership rules
// (a query uses Ints, Floats, Weights and Alias — never Pos or Seen,
// which belong to the internal/core caller).
type ScratchSampler interface {
	Sampler
	// QueryScratch is Query with all temporaries drawn from sc.
	QueryScratch(r *rng.Source, q Interval, s int, dst []int, sc *scratch.Arena) ([]int, bool)
}

// StopScratchSampler combines stop-aware and scratch-aware querying
// (the Naive baseline's O(|S_q|) report buffer comes from the arena).
type StopScratchSampler interface {
	StopSampler
	// QueryStopScratch is QueryStop with all temporaries drawn from sc.
	QueryStopScratch(stop func() bool, r *rng.Source, q Interval, s int, dst []int, sc *scratch.Arena) ([]int, bool, error)
}

// stopPollEvery is the loop-iteration granularity of stop checks: small
// enough that cancellation latency is a few microseconds, large enough
// that the predicate (typically ctx.Err) stays off the hot path.
const stopPollEvery = 1024

// base carries the sorted value/weight arrays shared by the static
// structures.
type base struct {
	values  []float64
	weights []float64
}

func newBase(values, weights []float64) (base, error) {
	n := len(values)
	if n == 0 {
		return base{}, ErrEmpty
	}
	if len(weights) != n {
		return base{}, errors.New("rangesample: values and weights length mismatch")
	}
	for i, w := range weights {
		if !(w > 0) || math.IsInf(w, 1) {
			return base{}, ErrBadWeight
		}
		if math.IsNaN(values[i]) || math.IsInf(values[i], 0) {
			return base{}, ErrBadValue
		}
	}
	b := base{
		values:  append([]float64(nil), values...),
		weights: append([]float64(nil), weights...),
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool { return values[idx[x]] < values[idx[y]] })
	for i, j := range idx {
		b.values[i] = values[j]
		b.weights[i] = weights[j]
	}
	return b, nil
}

func (b *base) Len() int             { return len(b.values) }
func (b *base) Value(i int) float64  { return b.values[i] }
func (b *base) Weight(i int) float64 { return b.weights[i] }

// posRange maps a value interval to the sorted-position range [a, b]; ok
// is false when no stored value lies in q.
func (b *base) posRange(q Interval) (a, bIdx int, ok bool) {
	a = sort.SearchFloat64s(b.values, q.Lo)
	bIdx = sort.Search(len(b.values), func(i int) bool { return b.values[i] > q.Hi }) - 1
	if a > bIdx {
		return 0, 0, false
	}
	return a, bIdx, true
}

// uniform returns a slice of n unit weights (helper for WR-sampling
// callers and tests).
func uniform(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}
