package rangesample

import (
	"fmt"
	"math"

	"repro/internal/alias"
	"repro/internal/fenwick"
	"repro/internal/rng"
	"repro/internal/scratch"
)

// Chunked is the Theorem 3 structure (§4.2): the sorted input is divided
// into g = Θ(n / log n) chunks of Θ(log n) consecutive elements. A
// Lemma 2 structure (posTree) over the g chunk totals supports
// chunk-aligned sampling in O(log g + s) time using only
// O(g·log g) = O(n) space; a per-chunk alias structure finishes each
// sampled chunk in O(1); and a Fenwick tree provides the range-sum needed
// to weight the two partial end chunks (the paper's "slightly augmented
// BST", Chapter 14 of CLRS).
//
// A query splits [x, y] into q1 (partial head chunk), q2 (chunk-aligned
// middle) and q3 (partial tail chunk) exactly as in Figure 2, distributes
// the s samples over the three pieces with an on-the-fly alias (Theorem
// 1), and resolves each piece in O(log n + s_j) time.
//
// Total: O(n) space, O(n log n) preprocessing (dominated by sorting),
// O(log n + s) query.
type Chunked struct {
	base
	chunkSize int
	numChunks int
	// chunkAlias[c] samples an offset within chunk c.
	chunkAlias []*alias.Alias
	// top is the Lemma 2 structure over chunk totals.
	top *posTree
	// sums provides O(log g) range sums over chunk totals.
	sums *fenwick.Tree
	// pcache memoizes partial-chunk aliases by position range; like the
	// posTree cover cache it dies with this immutable instance.
	pcache *coverCache
}

// NewChunked builds the structure with the paper's chunk size
// Θ(log n).
func NewChunked(values, weights []float64) (*Chunked, error) {
	n := len(values)
	c := 1
	if n > 1 {
		c = int(math.Ceil(math.Log2(float64(n))))
	}
	return NewChunkedSize(values, weights, c)
}

// NewChunkedSize builds the structure with an explicit chunk size
// (exposed for the A1 ablation). chunkSize must be ≥ 1.
func NewChunkedSize(values, weights []float64, chunkSize int) (*Chunked, error) {
	return NewChunkedSizeStop(values, weights, chunkSize, nil)
}

// NewChunkedStop is NewChunked with a cooperative stop predicate: the
// per-chunk build loop polls stop and abandons the build with
// ErrCanceled when it fires, bounding how long a doomed (re)build holds
// the CPU after its budget expires. stop may be nil.
func NewChunkedStop(values, weights []float64, stop func() bool) (*Chunked, error) {
	n := len(values)
	c := 1
	if n > 1 {
		c = int(math.Ceil(math.Log2(float64(n))))
	}
	return NewChunkedSizeStop(values, weights, c, stop)
}

// NewChunkedSizeStop is NewChunkedSize with a cooperative stop
// predicate (see NewChunkedStop).
func NewChunkedSizeStop(values, weights []float64, chunkSize int, stop func() bool) (*Chunked, error) {
	if chunkSize < 1 {
		return nil, fmt.Errorf("rangesample: chunk size %d < 1", chunkSize)
	}
	if stop != nil && stop() {
		return nil, ErrCanceled
	}
	b, err := newBase(values, weights)
	if err != nil {
		return nil, err
	}
	n := len(b.values)
	g := (n + chunkSize - 1) / chunkSize
	ch := &Chunked{
		base:       b,
		chunkSize:  chunkSize,
		numChunks:  g,
		chunkAlias: make([]*alias.Alias, g),
		pcache:     newCoverCache(defaultCoverCacheCap),
	}
	totals := make([]float64, g)
	for ci := 0; ci < g; ci++ {
		if stop != nil && ci%64 == 0 && stop() {
			return nil, ErrCanceled
		}
		lo, hi := ch.chunkBounds(ci)
		sum := 0.0
		for i := lo; i <= hi; i++ {
			sum += b.weights[i]
		}
		totals[ci] = sum
		ch.chunkAlias[ci] = alias.MustNew(b.weights[lo : hi+1])
	}
	ch.top = newPosTree(totals)
	ch.sums = fenwick.FromSlice(totals)
	return ch, nil
}

// chunkBounds returns the position range [lo, hi] of chunk ci.
func (ch *Chunked) chunkBounds(ci int) (lo, hi int) {
	lo = ci * ch.chunkSize
	hi = lo + ch.chunkSize - 1
	if hi >= len(ch.values) {
		hi = len(ch.values) - 1
	}
	return lo, hi
}

// NumChunks returns g, the number of chunks (diagnostic).
func (ch *Chunked) NumChunks() int { return ch.numChunks }

// Query implements Sampler.
func (ch *Chunked) Query(r *rng.Source, q Interval, s int, dst []int) ([]int, bool) {
	sc := scratch.Get()
	defer scratch.Put(sc)
	return ch.QueryScratch(r, q, s, dst, sc)
}

// QueryScratch implements ScratchSampler: the same query algorithm with
// the piece-distribution alias, partial-chunk aliases and cover buffers
// drawn from sc, so a warm arena makes the query allocation-free.
func (ch *Chunked) QueryScratch(r *rng.Source, q Interval, s int, dst []int, sc *scratch.Arena) ([]int, bool) {
	pa, pb, ok := ch.posRange(q)
	if !ok {
		return dst, false
	}
	ca, cb := pa/ch.chunkSize, pb/ch.chunkSize

	if ca == cb {
		// The whole query lives inside one chunk of O(log n) elements:
		// build an alias over the sub-range on the fly.
		return ch.samplePartial(r, pa, pb, s, dst, sc), true
	}

	// Split into q1 (head partial), q2 (aligned middle), q3 (tail
	// partial), per Figure 2.
	h1lo, h1hi := pa, (ca+1)*ch.chunkSize-1 // within chunk ca
	h3lo, h3hi := cb*ch.chunkSize, pb       // within chunk cb
	w1 := ch.sumRangeSmall(h1lo, h1hi)
	w3 := ch.sumRangeSmall(h3lo, h3hi)
	w2 := 0.0
	if ca+1 <= cb-1 {
		w2 = ch.sums.RangeSum(ca+1, cb-1)
	}

	// Distribute s over the three pieces (Theorem 1 on ≤3 weights). The
	// piece arrays are fixed-size stack buffers; only the alias build
	// itself touches the arena.
	var pieceW [3]float64
	var pieceID [3]int
	np := 0
	if w1 > 0 {
		pieceW[np], pieceID[np] = w1, 0
		np++
	}
	if w2 > 0 {
		pieceW[np], pieceID[np] = w2, 1
		np++
	}
	if w3 > 0 {
		pieceW[np], pieceID[np] = w3, 2
		np++
	}
	var countBuf [3]int
	counts := sc.Alias().MustRebuild(pieceW[:np]).CountsBulkInto(r, s, countBuf[:np])
	var s1, s2, s3 int
	for i, c := range counts {
		switch pieceID[i] {
		case 0:
			s1 = c
		case 1:
			s2 = c
		case 2:
			s3 = c
		}
	}

	if s1 > 0 {
		dst = ch.samplePartial(r, h1lo, h1hi, s1, dst, sc)
	}
	if s3 > 0 {
		dst = ch.samplePartial(r, h3lo, h3hi, s3, dst, sc)
	}
	if s2 > 0 {
		// Chunk-aligned middle: sample s2 chunks from the Lemma 2
		// structure, then finish each with the chunk's own alias. The
		// finish draws run through a Block (two words minimum per
		// chunk sample, rejections overflowing to direct draws).
		chunks := ch.top.queryPosScratch(r, ca+1, cb-1, s2, sc.Ints(s2), sc)
		bk := rng.MakeBlock(r, sc.Words(bulkRangeWords))
		for off := 0; off < len(chunks); {
			cn := len(chunks) - off
			if cn > bulkRangeWords/2 {
				cn = bulkRangeWords / 2
			}
			bk.Prime(2 * cn)
			for _, ci := range chunks[off : off+cn] {
				lo, _ := ch.chunkBounds(ci)
				dst = append(dst, lo+ch.chunkAlias[ci].SampleBlock(&bk))
			}
			off += cn
		}
	}
	return dst, true
}

// samplePartial draws s weighted samples from positions [lo, hi] (a range
// spanning at most one chunk, i.e. O(log n) elements). The on-the-fly
// alias is memoized in pcache keyed by the range, so hot queries reuse
// it; alias.New builds the same table the arena builder would, keeping
// the draws stream-identical to the scalar path.
func (ch *Chunked) samplePartial(r *rng.Source, lo, hi, s int, dst []int, sc *scratch.Arena) []int {
	if lo == hi {
		for i := 0; i < s; i++ {
			dst = append(dst, lo)
		}
		return dst
	}
	key := packRange(lo, hi)
	e := ch.pcache.get(key)
	if e == nil {
		e = ch.pcache.put(&coverEntry{key: key, al: alias.MustNew(ch.weights[lo : hi+1]), minRaw: 2})
	}
	return e.al.SampleBulk(r, s, lo, dst)
}

// sumRangeSmall sums weights over [lo, hi] directly (≤ chunkSize terms).
func (ch *Chunked) sumRangeSmall(lo, hi int) float64 {
	sum := 0.0
	for i := lo; i <= hi; i++ {
		sum += ch.weights[i]
	}
	return sum
}

// RangeWeight returns the total weight of S ∩ q in O(log n).
func (ch *Chunked) RangeWeight(q Interval) float64 {
	pa, pb, ok := ch.posRange(q)
	if !ok {
		return 0
	}
	ca, cb := pa/ch.chunkSize, pb/ch.chunkSize
	if ca == cb {
		return ch.sumRangeSmall(pa, pb)
	}
	w := ch.sumRangeSmall(pa, (ca+1)*ch.chunkSize-1) +
		ch.sumRangeSmall(cb*ch.chunkSize, pb)
	if ca+1 <= cb-1 {
		w += ch.sums.RangeSum(ca+1, cb-1)
	}
	return w
}

var _ Sampler = (*Chunked)(nil)
var _ ScratchSampler = (*Chunked)(nil)
