package rangesample

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestPosSamplerUniformPath(t *testing.T) {
	p := NewPosSampler([]float64{2, 2, 2, 2, 2, 2})
	if !p.Uniform() {
		t.Fatal("uniform weights not detected")
	}
	r := rng.New(1)
	const draws = 120000
	counts := make([]int, 4)
	out := p.Query(r, 1, 4, draws, nil)
	for _, pos := range out {
		if pos < 1 || pos > 4 {
			t.Fatalf("pos %d out of range", pos)
		}
		counts[pos-1]++
	}
	expected := float64(draws) / 4
	for i, c := range counts {
		if math.Abs(float64(c)-expected) > 6*math.Sqrt(expected) {
			t.Fatalf("pos %d count %d", i+1, c)
		}
	}
	if got := p.RangeWeight(1, 4); got != 8 {
		t.Fatalf("RangeWeight = %v", got)
	}
}

func TestPosSamplerWeightedPath(t *testing.T) {
	w := []float64{1, 4, 2, 8, 1}
	p := NewPosSampler(w)
	if p.Uniform() {
		t.Fatal("non-uniform weights detected as uniform")
	}
	r := rng.New(2)
	const draws = 240000
	counts := make([]int, 3)
	out := p.Query(r, 1, 3, draws, nil)
	total := w[1] + w[2] + w[3]
	for _, pos := range out {
		counts[pos-1]++
	}
	for i := 0; i < 3; i++ {
		expected := draws * w[i+1] / total
		if math.Abs(float64(counts[i])-expected) > 6*math.Sqrt(expected) {
			t.Fatalf("pos %d count %d, expected ~%v", i+1, counts[i], expected)
		}
	}
	if got := p.RangeWeight(1, 3); math.Abs(got-14) > 1e-12 {
		t.Fatalf("RangeWeight = %v", got)
	}
	if got := p.RangeWeight(3, 1); got != 0 {
		t.Fatalf("inverted RangeWeight = %v", got)
	}
}

func TestPosSamplerPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewPosSampler(nil) },
		func() { NewPosSampler([]float64{1, 0}) },
		func() { NewPosSampler([]float64{1, 1}).Query(rng.New(1), -1, 0, 1, nil) },
		func() { NewPosSampler([]float64{1, 1}).Query(rng.New(1), 0, 2, 1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestPosSamplerSinglePosition(t *testing.T) {
	p := NewPosSampler([]float64{3, 1})
	r := rng.New(3)
	out := p.Query(r, 1, 1, 10, nil)
	for _, pos := range out {
		if pos != 1 {
			t.Fatalf("pos = %d", pos)
		}
	}
}
