package rangesample

import (
	"sync"

	"repro/internal/alias"
)

// coverCache is a small bounded LRU of canonical-cover decompositions
// keyed by position range, so hot ranges skip the BST cover walk and
// the top-level alias (re)build entirely. One cache hangs off each
// immutable structure instance (posTree, Chunked): a snapshot rebuild
// constructs fresh structures with fresh empty caches, so a stale
// decomposition can never outlive the structure it indexes.
//
// Entries are immutable after insertion. The mutex guards only the map
// and the recency list; readers sample from an entry's cov/alias after
// releasing the lock, which is safe precisely because nothing mutates
// an entry — eviction merely drops the cache's reference and the entry
// is reclaimed once in-flight queries finish.
type coverCache struct {
	mu         sync.Mutex
	cap        int
	m          map[uint64]*coverEntry
	head, tail *coverEntry // head = most recently used
	hits       uint64
	misses     uint64
}

// coverEntry is one cached decomposition. cov holds canonical node ids
// (posTree) and is nil for partial-chunk entries; al is the top-level
// (or partial-range) alias, nil when the cover is a single node whose
// own alias serves directly; minRaw is the guaranteed-minimum raw-word
// consumption per sample for Block priming.
type coverEntry struct {
	key        uint64
	cov        []int32
	al         *alias.Alias
	minRaw     int
	prev, next *coverEntry
}

// defaultCoverCacheCap bounds each structure's decomposition cache. A
// few hundred distinct hot ranges cover realistic serving skew; beyond
// that the LRU recycles.
const defaultCoverCacheCap = 256

func newCoverCache(capacity int) *coverCache {
	if capacity < 1 {
		capacity = 1
	}
	return &coverCache{cap: capacity, m: make(map[uint64]*coverEntry, capacity)}
}

// packRange packs a position range into a cache key. Positions are
// int32 throughout the structures, so 32 bits per end is exact.
func packRange(a, b int) uint64 {
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// get returns the entry for key, promoting it to most-recent, or nil.
func (c *coverCache) get(key uint64) *coverEntry {
	c.mu.Lock()
	e := c.m[key]
	if e == nil {
		c.misses++
		c.mu.Unlock()
		return nil
	}
	c.hits++
	c.moveToFront(e)
	c.mu.Unlock()
	return e
}

// put inserts e (built by the caller outside the lock), evicting the
// least-recently-used entry at capacity. If the key was inserted
// concurrently by another miss, the incumbent wins — both entries are
// built deterministically from the same immutable structure, so their
// contents are interchangeable.
func (c *coverCache) put(e *coverEntry) *coverEntry {
	c.mu.Lock()
	if old := c.m[e.key]; old != nil {
		c.moveToFront(old)
		c.mu.Unlock()
		return old
	}
	if len(c.m) >= c.cap {
		lru := c.tail
		c.unlink(lru)
		delete(c.m, lru.key)
	}
	c.m[e.key] = e
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
	c.mu.Unlock()
	return e
}

func (c *coverCache) moveToFront(e *coverEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	e.prev, e.next = nil, c.head
	c.head.prev = e
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *coverCache) unlink(e *coverEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// purge drops every resident decomposition. In-flight queries keep
// sampling from entries they already hold (entries are immutable);
// subsequent queries rebuild from the structure. Hit/miss counters
// survive so diagnostics stay cumulative.
func (c *coverCache) purge() {
	c.mu.Lock()
	c.m = make(map[uint64]*coverEntry, c.cap)
	c.head, c.tail = nil, nil
	c.mu.Unlock()
}

// Len reports the resident entry count.
func (c *coverCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats reports hit/miss counts (diagnostic; tests assert on these).
func (c *coverCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
