package rangesample

import (
	"errors"

	"repro/internal/rng"
)

// Dynamic is an updatable weighted range-sampling structure, covering the
// direction opened by Hu et al. [18] (the paper notes their WR structure
// supports O(log n) insertions and deletions, and poses dynamization as
// Direction 1 of Section 9).
//
// It is a treap (randomised balanced BST) keyed by value, augmented with
// subtree weight sums and counts. Insert and Delete run in O(log n)
// expected time. Queries never restructure the tree: RangeWeight and
// Count are pruned O(log n) descents, and each sample draw is a weighted
// root-to-leaf descent that recomputes the in-range weight below the
// current node as it goes — O(log² n) expected per draw.
//
// (Hu et al. achieve O(log n + s); the extra log factors here buy a much
// simpler dynamization than their sample-buffer machinery, and — because
// the read paths are strictly non-mutating — any number of concurrent
// readers may share one Dynamic. See DESIGN.md substitutions.)
//
// Concurrency contract: Query, RangeWeight, Count, SelectInRange, Walk,
// Len and TotalWeight never write to the structure, so concurrent
// readers are safe. Insert and Delete restructure the tree and require
// exclusive access; callers interleaving writes with reads must provide
// their own synchronisation (internal/ingest wraps one Dynamic per
// table under an RWMutex).
//
// Unlike the static structures, results are returned as values, since
// sorted positions shift under updates.
type Dynamic struct {
	root *treapNode
	rand *rng.Source // structural randomness (priorities) only
	size int
}

type treapNode struct {
	value    float64
	weight   float64 // this element's weight
	subtotal float64 // total weight of the subtree
	priority uint64
	left     *treapNode
	right    *treapNode
	count    int // subtree size
}

// ErrNotFound is returned by Delete when no element has the given value.
var ErrNotFound = errors.New("rangesample: value not found")

// NewDynamic returns an empty dynamic structure. structuralSeed drives
// only the treap priorities (the shape of the tree), never the query
// sampling, so query outputs remain independent across queries even for
// a fixed seed.
func NewDynamic(structuralSeed uint64) *Dynamic {
	return &Dynamic{rand: rng.New(structuralSeed)}
}

// Len returns the number of stored elements.
func (d *Dynamic) Len() int { return d.size }

// TotalWeight returns the total weight of all stored elements.
func (d *Dynamic) TotalWeight() float64 {
	if d.root == nil {
		return 0
	}
	return d.root.subtotal
}

func (n *treapNode) pull() {
	n.subtotal = n.weight
	n.count = 1
	if n.left != nil {
		n.subtotal += n.left.subtotal
		n.count += n.left.count
	}
	if n.right != nil {
		n.subtotal += n.right.subtotal
		n.count += n.right.count
	}
}

// split partitions t into (< v) and (≥ v). Write path only.
func split(t *treapNode, v float64) (l, r *treapNode) {
	if t == nil {
		return nil, nil
	}
	if t.value < v {
		l2, r2 := split(t.right, v)
		t.right = l2
		t.pull()
		return t, r2
	}
	l2, r2 := split(t.left, v)
	t.left = r2
	t.pull()
	return l2, t
}

func merge(l, r *treapNode) *treapNode {
	if l == nil {
		return r
	}
	if r == nil {
		return l
	}
	if l.priority > r.priority {
		l.right = merge(l.right, r)
		l.pull()
		return l
	}
	r.left = merge(l, r.left)
	r.pull()
	return r
}

// Insert adds an element. Duplicate values are permitted; each insertion
// is a distinct element. O(log n) expected. Requires exclusive access.
func (d *Dynamic) Insert(value, weight float64) error {
	if !(weight > 0) {
		return ErrBadWeight
	}
	nd := &treapNode{
		value:    value,
		weight:   weight,
		priority: d.rand.Uint64(),
	}
	nd.pull()
	l, r := split(d.root, value)
	d.root = merge(merge(l, nd), r)
	d.size++
	return nil
}

// Delete removes one element with the given value (an arbitrary one if
// duplicated). O(log n) expected. Requires exclusive access.
func (d *Dynamic) Delete(value float64) error {
	var deleted bool
	d.root = deleteOne(d.root, value, &deleted)
	if !deleted {
		return ErrNotFound
	}
	d.size--
	return nil
}

func deleteOne(t *treapNode, v float64, deleted *bool) *treapNode {
	if t == nil {
		return nil
	}
	switch {
	case v < t.value:
		t.left = deleteOne(t.left, v, deleted)
	case v > t.value:
		t.right = deleteOne(t.right, v, deleted)
	default:
		*deleted = true
		return merge(t.left, t.right)
	}
	t.pull()
	return t
}

// Query draws s independent weighted samples (as values) from S ∩ q,
// appending to dst (the arena-era Into convention: pass a warm buffer
// and no per-call allocation happens). ok is false when the
// intersection is empty. O(s·log² n) expected; read-only.
func (d *Dynamic) Query(r *rng.Source, q Interval, s int, dst []float64) ([]float64, bool) {
	w := weightIn(d.root, q.Lo, q.Hi)
	if !(w > 0) {
		return dst, false
	}
	for i := 0; i < s; i++ {
		dst = append(dst, pickIn(d.root, q.Lo, q.Hi, r.Float64()*w))
	}
	return dst, true
}

// Sample draws one weighted sample from S ∩ q. ok is false when the
// intersection is empty. O(log² n) expected; read-only.
func (d *Dynamic) Sample(r *rng.Source, q Interval) (float64, bool) {
	w := weightIn(d.root, q.Lo, q.Hi)
	if !(w > 0) {
		return 0, false
	}
	return pickIn(d.root, q.Lo, q.Hi, r.Float64()*w), true
}

// RangeWeight returns the total weight of S ∩ q. O(log n); read-only.
func (d *Dynamic) RangeWeight(q Interval) float64 {
	return weightIn(d.root, q.Lo, q.Hi)
}

// Count returns |S ∩ q|. O(log n); read-only.
func (d *Dynamic) Count(q Interval) int {
	return countIn(d.root, q.Lo, q.Hi)
}

// SelectInRange returns the rank-th smallest element of S ∩ q (0-based,
// duplicates counted with multiplicity). ok is false when rank is out of
// bounds. O(log² n) expected; read-only. This is the order-statistics
// hook the ingest layer uses to map global without-replacement ranks
// onto overlay elements.
func (d *Dynamic) SelectInRange(q Interval, rank int) (float64, bool) {
	if rank < 0 {
		return 0, false
	}
	t := d.root
	for t != nil {
		if t.value < q.Lo {
			t = t.right
			continue
		}
		if t.value > q.Hi {
			t = t.left
			continue
		}
		cl := countGE(t.left, q.Lo)
		if rank < cl {
			return selectGE(t.left, q.Lo, rank)
		}
		rank -= cl
		if rank == 0 {
			return t.value, true
		}
		rank--
		return selectLE(t.right, q.Hi, rank)
	}
	return 0, false
}

// Walk visits every element in ascending value order. Read-only; the
// ingest rebuilder uses it to materialise the overlay.
func (d *Dynamic) Walk(fn func(value, weight float64)) {
	walk(d.root, fn)
}

func walk(t *treapNode, fn func(value, weight float64)) {
	if t == nil {
		return
	}
	walk(t.left, fn)
	fn(t.value, t.weight)
	walk(t.right, fn)
}

// weightGE sums the weights of elements with value ≥ lo. O(log n).
func weightGE(t *treapNode, lo float64) float64 {
	w := 0.0
	for t != nil {
		if t.value < lo {
			t = t.right
			continue
		}
		w += t.weight
		if t.right != nil {
			w += t.right.subtotal
		}
		t = t.left
	}
	return w
}

// weightLE sums the weights of elements with value ≤ hi. O(log n).
func weightLE(t *treapNode, hi float64) float64 {
	w := 0.0
	for t != nil {
		if t.value > hi {
			t = t.left
			continue
		}
		w += t.weight
		if t.left != nil {
			w += t.left.subtotal
		}
		t = t.right
	}
	return w
}

// weightIn sums the weights of elements with value in [lo, hi].
func weightIn(t *treapNode, lo, hi float64) float64 {
	for t != nil {
		if t.value < lo {
			t = t.right
			continue
		}
		if t.value > hi {
			t = t.left
			continue
		}
		return weightGE(t.left, lo) + t.weight + weightLE(t.right, hi)
	}
	return 0
}

// countGE counts elements with value ≥ lo. O(log n).
func countGE(t *treapNode, lo float64) int {
	c := 0
	for t != nil {
		if t.value < lo {
			t = t.right
			continue
		}
		c++
		if t.right != nil {
			c += t.right.count
		}
		t = t.left
	}
	return c
}

// countLE counts elements with value ≤ hi. O(log n).
func countLE(t *treapNode, hi float64) int {
	c := 0
	for t != nil {
		if t.value > hi {
			t = t.left
			continue
		}
		c++
		if t.left != nil {
			c += t.left.count
		}
		t = t.right
	}
	return c
}

// countIn counts elements with value in [lo, hi].
func countIn(t *treapNode, lo, hi float64) int {
	for t != nil {
		if t.value < lo {
			t = t.right
			continue
		}
		if t.value > hi {
			t = t.left
			continue
		}
		return countGE(t.left, lo) + 1 + countLE(t.right, hi)
	}
	return 0
}

// pickIn draws the element of [lo, hi] selected by cumulative weight
// offset x ∈ [0, weightIn). The descent recomputes the in-range weight
// of one child frontier per level, so a draw costs O(log² n) expected.
// Floating-point slack (x marginally past the remaining mass) resolves
// to the nearest in-range element already passed, never to an
// out-of-range one.
func pickIn(t *treapNode, lo, hi float64, x float64) float64 {
	for t != nil {
		if t.value < lo {
			t = t.right
			continue
		}
		if t.value > hi {
			t = t.left
			continue
		}
		wl := weightGE(t.left, lo)
		if x < wl {
			return pickGE(t.left, lo, x, t.value)
		}
		x -= wl
		if x < t.weight {
			return t.value
		}
		x -= t.weight
		// Everything right of the split node is ≥ lo already.
		return pickLE(t.right, hi, x, t.value)
	}
	return 0 // unreachable when weightIn > 0
}

// pickGE draws among elements ≥ lo in t by offset x; fb is the slack
// fallback.
func pickGE(t *treapNode, lo float64, x float64, fb float64) float64 {
	for t != nil {
		if t.value < lo {
			t = t.right
			continue
		}
		wl := weightGE(t.left, lo)
		if x < wl {
			t = t.left
			continue
		}
		x -= wl
		if x < t.weight {
			return t.value
		}
		x -= t.weight
		fb = t.value
		// The right subtree is entirely ≥ lo: plain weighted pick.
		return pickAll(t.right, x, fb)
	}
	return fb
}

// pickLE draws among elements ≤ hi in t by offset x; fb is the slack
// fallback.
func pickLE(t *treapNode, hi float64, x float64, fb float64) float64 {
	for t != nil {
		if t.value > hi {
			t = t.left
			continue
		}
		if t.left != nil {
			if x < t.left.subtotal {
				// The left subtree is entirely ≤ hi: plain weighted pick.
				return pickAll(t.left, x, fb)
			}
			x -= t.left.subtotal
		}
		if x < t.weight {
			return t.value
		}
		x -= t.weight
		fb = t.value
		t = t.right
	}
	return fb
}

// pickAll draws from the whole subtree t by offset x ∈ [0, t.subtotal);
// fb is the slack fallback.
func pickAll(t *treapNode, x float64, fb float64) float64 {
	for t != nil {
		if t.left != nil {
			if x < t.left.subtotal {
				t = t.left
				continue
			}
			x -= t.left.subtotal
		}
		if x < t.weight {
			return t.value
		}
		x -= t.weight
		fb = t.value
		t = t.right
	}
	return fb
}

// selectGE returns the rank-th smallest element ≥ lo in t.
func selectGE(t *treapNode, lo float64, rank int) (float64, bool) {
	for t != nil {
		if t.value < lo {
			t = t.right
			continue
		}
		cl := countGE(t.left, lo)
		if rank < cl {
			t = t.left
			continue
		}
		rank -= cl
		if rank == 0 {
			return t.value, true
		}
		rank--
		return selectAll(t.right, rank)
	}
	return 0, false
}

// selectLE returns the rank-th smallest element ≤ hi in t.
func selectLE(t *treapNode, hi float64, rank int) (float64, bool) {
	for t != nil {
		if t.value > hi {
			t = t.left
			continue
		}
		cl := 0
		if t.left != nil {
			cl = t.left.count
		}
		if rank < cl {
			return selectAll(t.left, rank)
		}
		rank -= cl
		if rank == 0 {
			return t.value, true
		}
		rank--
		t = t.right
	}
	return 0, false
}

// selectAll returns the rank-th smallest element of the whole subtree t.
func selectAll(t *treapNode, rank int) (float64, bool) {
	for t != nil {
		cl := 0
		if t.left != nil {
			cl = t.left.count
		}
		if rank < cl {
			t = t.left
			continue
		}
		rank -= cl
		if rank == 0 {
			return t.value, true
		}
		rank--
		t = t.right
	}
	return 0, false
}
