package rangesample

import (
	"errors"

	"repro/internal/rng"
)

// Dynamic is an updatable weighted range-sampling structure, covering the
// direction opened by Hu et al. [18] (the paper notes their WR structure
// supports O(log n) insertions and deletions, and poses dynamization as
// Direction 1 of Section 9).
//
// It is a treap (randomised balanced BST) keyed by value, augmented with
// subtree weight sums. Insert and Delete run in O(log n) expected time. A
// query splits the treap at the interval endpoints, draws s independent
// weighted samples from the middle piece by weighted root-to-node
// descents, and merges the pieces back — O((1+s)·log n) expected time.
//
// (Hu et al. achieve O(log n + s); the extra log factor here buys a much
// simpler dynamization than their sample-buffer machinery. See DESIGN.md
// substitutions.)
//
// Unlike the static structures, results are returned as values, since
// sorted positions shift under updates.
type Dynamic struct {
	root *treapNode
	rand *rng.Source // structural randomness (priorities) only
	size int
}

type treapNode struct {
	value    float64
	weight   float64 // this element's weight
	subtotal float64 // total weight of the subtree
	priority uint64
	left     *treapNode
	right    *treapNode
	count    int // subtree size
}

// ErrNotFound is returned by Delete when no element has the given value.
var ErrNotFound = errors.New("rangesample: value not found")

// NewDynamic returns an empty dynamic structure. structuralSeed drives
// only the treap priorities (the shape of the tree), never the query
// sampling, so query outputs remain independent across queries even for
// a fixed seed.
func NewDynamic(structuralSeed uint64) *Dynamic {
	return &Dynamic{rand: rng.New(structuralSeed)}
}

// Len returns the number of stored elements.
func (d *Dynamic) Len() int { return d.size }

// TotalWeight returns the total weight of all stored elements.
func (d *Dynamic) TotalWeight() float64 {
	if d.root == nil {
		return 0
	}
	return d.root.subtotal
}

func (n *treapNode) pull() {
	n.subtotal = n.weight
	n.count = 1
	if n.left != nil {
		n.subtotal += n.left.subtotal
		n.count += n.left.count
	}
	if n.right != nil {
		n.subtotal += n.right.subtotal
		n.count += n.right.count
	}
}

// split partitions t into (< v) and (≥ v).
func split(t *treapNode, v float64) (l, r *treapNode) {
	if t == nil {
		return nil, nil
	}
	if t.value < v {
		l2, r2 := split(t.right, v)
		t.right = l2
		t.pull()
		return t, r2
	}
	l2, r2 := split(t.left, v)
	t.left = r2
	t.pull()
	return l2, t
}

// splitLE partitions t into (≤ v) and (> v).
func splitLE(t *treapNode, v float64) (l, r *treapNode) {
	if t == nil {
		return nil, nil
	}
	if t.value <= v {
		l2, r2 := splitLE(t.right, v)
		t.right = l2
		t.pull()
		return t, r2
	}
	l2, r2 := splitLE(t.left, v)
	t.left = r2
	t.pull()
	return l2, t
}

func merge(l, r *treapNode) *treapNode {
	if l == nil {
		return r
	}
	if r == nil {
		return l
	}
	if l.priority > r.priority {
		l.right = merge(l.right, r)
		l.pull()
		return l
	}
	r.left = merge(l, r.left)
	r.pull()
	return r
}

// Insert adds an element. Duplicate values are permitted; each insertion
// is a distinct element. O(log n) expected.
func (d *Dynamic) Insert(value, weight float64) error {
	if !(weight > 0) {
		return ErrBadWeight
	}
	nd := &treapNode{
		value:    value,
		weight:   weight,
		priority: d.rand.Uint64(),
	}
	nd.pull()
	l, r := split(d.root, value)
	d.root = merge(merge(l, nd), r)
	d.size++
	return nil
}

// Delete removes one element with the given value (an arbitrary one if
// duplicated). O(log n) expected.
func (d *Dynamic) Delete(value float64) error {
	var deleted bool
	d.root = deleteOne(d.root, value, &deleted)
	if !deleted {
		return ErrNotFound
	}
	d.size--
	return nil
}

func deleteOne(t *treapNode, v float64, deleted *bool) *treapNode {
	if t == nil {
		return nil
	}
	switch {
	case v < t.value:
		t.left = deleteOne(t.left, v, deleted)
	case v > t.value:
		t.right = deleteOne(t.right, v, deleted)
	default:
		*deleted = true
		return merge(t.left, t.right)
	}
	t.pull()
	return t
}

// Query draws s independent weighted samples (as values) from S ∩ q,
// appending to dst. ok is false when the intersection is empty.
// O((1+s)·log n) expected time; outputs are independent across queries.
func (d *Dynamic) Query(r *rng.Source, q Interval, s int, dst []float64) ([]float64, bool) {
	// Carve out the subtreap holding exactly S ∩ [Lo, Hi].
	left, rest := split(d.root, q.Lo)
	mid, right := splitLE(rest, q.Hi)
	defer func() {
		d.root = merge(merge(left, mid), right)
	}()
	if mid == nil {
		return dst, false
	}
	for i := 0; i < s; i++ {
		dst = append(dst, sampleTreap(r, mid))
	}
	return dst, true
}

// RangeWeight returns the total weight of S ∩ q. O(log n) expected.
func (d *Dynamic) RangeWeight(q Interval) float64 {
	left, rest := split(d.root, q.Lo)
	mid, right := splitLE(rest, q.Hi)
	w := 0.0
	if mid != nil {
		w = mid.subtotal
	}
	d.root = merge(merge(left, mid), right)
	return w
}

// Count returns |S ∩ q|. O(log n) expected.
func (d *Dynamic) Count(q Interval) int {
	left, rest := split(d.root, q.Lo)
	mid, right := splitLE(rest, q.Hi)
	c := 0
	if mid != nil {
		c = mid.count
	}
	d.root = merge(merge(left, mid), right)
	return c
}

// sampleTreap draws one weighted element from the subtreap t by a
// top-down descent: at each node choose the node itself or one of its
// subtrees with probability proportional to their weights (the §3.2
// strategy adapted to trees that store elements at internal nodes too).
func sampleTreap(r *rng.Source, t *treapNode) float64 {
	for {
		x := r.Float64() * t.subtotal
		if t.left != nil {
			if x < t.left.subtotal {
				t = t.left
				continue
			}
			x -= t.left.subtotal
		}
		if x < t.weight {
			return t.value
		}
		// Floating-point slack can push x past weight when right is
		// nil; return the node itself in that case.
		if t.right == nil {
			return t.value
		}
		t = t.right
	}
}
