package sketch

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewKMVErrors(t *testing.T) {
	if _, err := NewKMV(0); err != ErrBadK {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewKMV(-5); err != ErrBadK {
		t.Fatalf("err = %v", err)
	}
}

func TestExactBelowK(t *testing.T) {
	h := NewHasher(42)
	s, err := Build(h, 64, []int{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Estimate(); got != 5 {
		t.Fatalf("Estimate = %v, want exactly 5", got)
	}
}

func TestDuplicatesIgnored(t *testing.T) {
	h := NewHasher(42)
	s, err := Build(h, 64, []int{7, 7, 7, 8, 8, 9})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Estimate(); got != 3 {
		t.Fatalf("Estimate = %v, want 3", got)
	}
}

func TestEstimateAccuracy(t *testing.T) {
	h := NewHasher(7)
	k := KForEpsilonDelta(0.5, 0.001)
	for _, n := range []int{1000, 10000, 100000} {
		elems := make([]int, n)
		for i := range elems {
			elems[i] = i * 13
		}
		s, err := Build(h, k, elems)
		if err != nil {
			t.Fatal(err)
		}
		got := s.Estimate()
		if got < float64(n)/2 || got > 1.5*float64(n) {
			t.Fatalf("n=%d: estimate %v outside [n/2, 1.5n]", n, got)
		}
	}
}

func TestEstimateTighterK(t *testing.T) {
	h := NewHasher(9)
	k := KForEpsilonDelta(0.1, 0.001)
	const n = 50000
	elems := make([]int, n)
	for i := range elems {
		elems[i] = i
	}
	s, err := Build(h, k, elems)
	if err != nil {
		t.Fatal(err)
	}
	got := s.Estimate()
	if math.Abs(got-n)/n > 0.1 {
		t.Fatalf("estimate %v deviates more than 10%% from %d", got, n)
	}
}

func TestMergeEqualsUnionSketch(t *testing.T) {
	h := NewHasher(11)
	f := func(aRaw, bRaw []uint16) bool {
		a := make([]int, len(aRaw))
		for i, v := range aRaw {
			a[i] = int(v)
		}
		b := make([]int, len(bRaw))
		for i, v := range bRaw {
			b[i] = int(v)
		}
		sa, err := Build(h, 32, a)
		if err != nil {
			return false
		}
		sb, err := Build(h, 32, b)
		if err != nil {
			return false
		}
		if err := sa.Merge(sb); err != nil {
			return false
		}
		union, err := Build(h, 32, append(append([]int{}, a...), b...))
		if err != nil {
			return false
		}
		// Merged sketch must be identical to the sketch of the union.
		if len(sa.hashes) != len(union.hashes) {
			return false
		}
		for i := range sa.hashes {
			if sa.hashes[i] != union.hashes[i] {
				return false
			}
		}
		return sa.Estimate() == union.Estimate()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeDifferentK(t *testing.T) {
	a, _ := NewKMV(8)
	b, _ := NewKMV(16)
	if err := a.Merge(b); err == nil {
		t.Fatal("merge with different k accepted")
	}
}

func TestMergeUnionEstimate(t *testing.T) {
	h := NewHasher(13)
	k := KForEpsilonDelta(0.5, 0.001)
	// Two overlapping sets: |A|=30000, |B|=30000, |A∪B|=45000.
	a := make([]int, 30000)
	b := make([]int, 30000)
	for i := range a {
		a[i] = i
	}
	for i := range b {
		b[i] = 15000 + i
	}
	sa, err := Build(h, k, a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := Build(h, k, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := sa.Merge(sb); err != nil {
		t.Fatal(err)
	}
	got := sa.Estimate()
	if got < 45000/2 || got > 45000*3/2 {
		t.Fatalf("union estimate %v outside factor-1.5 band of 45000", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	h := NewHasher(17)
	s, err := Build(h, 8, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	c.Add(h.Hash(99))
	if s.Estimate() == c.Estimate() {
		t.Fatal("clone shares state with original")
	}
}

func TestKForEpsilonDeltaDefaults(t *testing.T) {
	if got := KForEpsilonDelta(0, 0.5); got != 64 {
		t.Fatalf("invalid eps gave k=%d", got)
	}
	if got := KForEpsilonDelta(0.5, 0); got != 64 {
		t.Fatalf("invalid delta gave k=%d", got)
	}
	if got := KForEpsilonDelta(0.9999, 0.9999); got < 8 {
		t.Fatalf("k=%d below floor", got)
	}
}

func TestHasherDeterministic(t *testing.T) {
	h1 := NewHasher(5)
	h2 := NewHasher(5)
	h3 := NewHasher(6)
	if h1.Hash(123) != h2.Hash(123) {
		t.Fatal("same salt, different hashes")
	}
	if h1.Hash(123) == h3.Hash(123) {
		t.Fatal("different salts, same hash")
	}
}

func BenchmarkAdd(b *testing.B) {
	h := NewHasher(1)
	s, err := NewKMV(256)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(h.Hash(i))
	}
}

func BenchmarkMerge(b *testing.B) {
	h := NewHasher(1)
	elems := make([]int, 10000)
	for i := range elems {
		elems[i] = i
	}
	sa, _ := Build(h, 256, elems)
	for i := range elems {
		elems[i] = i + 5000
	}
	sb, _ := Build(h, 256, elems)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := sa.Clone()
		if err := c.Merge(sb); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDistinctGivenKthExact pins the estimator to the correctly rounded
// value of m·2^64/(kth+1) on adversarial kth values above 2^53, where
// the pre-fix float64(kth) conversion discarded low-order hash bits and
// produced a neighbouring float instead. Witnesses were searched
// against a 200-bit big.Float ground truth; each tuple is a case where
// the integer-exact division matches the true rounding and the old
// float-rounded path does not, so this test fails on the pre-fix code.
func TestDistinctGivenKthExact(t *testing.T) {
	cases := []struct {
		m    int
		kth  uint64
		want float64
	}{
		{63, 0x68429d5506ba2d, 39600.609603255456},
		{63, 0x1dfd504da7c67654, 537.7881078515928},
		{63, 0x7e6123026dea6ed, 2041.8511039155526},
		{63, 0x287dae59307176e1, 398.31131024714136},
		{63, 0xd622c467a8080c4c, 75.31668825083653},
		{63, 0x10edc187400b1b94, 952.6996971166268},
		{63, 0x4dffbbdd67056ef7, 206.77198682729684},
		{63, 0x5f63d8fc29a39ea, 2705.18838152908},
		{63, 0x71329a45f73bed37, 142.47643520645445},
		{63, 0x1f7e1e53114e6733, 512.1194910543339},
		{63, 0x8ab610eeaa71ead3, 116.27035510208705},
		{63, 0xec6d7e206d89ddc6, 68.2153554977457},
	}
	for _, c := range cases {
		if got := DistinctGivenKth(c.m, c.kth); got != c.want {
			t.Errorf("DistinctGivenKth(%d, %#x) = %v, want %v", c.m, c.kth, got, c.want)
		}
	}
	// Edges: frac exactly 1 (kth = 2^64−1) and exactly 1/2 (kth+1 = 2^63).
	if got := DistinctGivenKth(63, ^uint64(0)); got != 63 {
		t.Errorf("kth=max: got %v, want 63", got)
	}
	if got := DistinctGivenKth(63, 1<<63-1); got != 126 {
		t.Errorf("kth=2^63-1: got %v, want 126", got)
	}
	if got := DistinctGivenKth(0, 12345); got != 0 {
		t.Errorf("m=0: got %v, want 0", got)
	}
}

// TestEstimateAdversarialKth drives the adversarial kth values through
// the public Estimate path: a saturated sketch whose k-th minimum
// carries significant low-order bits must estimate with integer-exact
// precision (fails on the pre-fix float64(kth) code).
func TestEstimateAdversarialKth(t *testing.T) {
	const k = 64
	kths := []uint64{0x68429d5506ba2d, 0xd622c467a8080c4c, 0xec6d7e206d89ddc6}
	wants := []float64{39600.609603255456, 75.31668825083653, 68.2153554977457}
	for i, kth := range kths {
		s, err := NewKMV(k)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < k-1; j++ {
			s.Add(uint64(j)) // k−1 smallest hashes: 0..k−2
		}
		s.Add(kth)
		if got := s.Estimate(); got != wants[i] {
			t.Errorf("Estimate with kth=%#x: got %v, want %v", kth, got, wants[i])
		}
	}
}

// TestKForEpsilonDeltaOverflow: tiny eps/delta push 3/eps²·ln(2/δ) past
// what int can represent; the unguarded conversion yielded
// platform-dependent garbage (negative on amd64). The result must stay
// a usable positive k clamped to MaxK.
func TestKForEpsilonDeltaOverflow(t *testing.T) {
	for _, tc := range []struct{ eps, delta float64 }{
		{1e-9, 1e-9},
		{1e-12, 1e-12},
		{1e-300, 0.01},
		{0.01, 1e-300},
	} {
		k := KForEpsilonDelta(tc.eps, tc.delta)
		if k <= 0 {
			t.Errorf("KForEpsilonDelta(%g, %g) = %d, want positive", tc.eps, tc.delta, k)
		}
		if k > MaxK {
			t.Errorf("KForEpsilonDelta(%g, %g) = %d, exceeds MaxK %d", tc.eps, tc.delta, k, MaxK)
		}
	}
	// The clamp must not disturb the ordinary regime.
	if k := KForEpsilonDelta(0.05, 0.01); k < 8 || k > MaxK {
		t.Errorf("ordinary regime k = %d out of range", k)
	}
}
