// Package sketch implements the KMV (k minimum values, "bottom-k")
// distinct-count sketch used by the set union sampling structure of
// Section 7 of the paper. A sketch of a set S stores the k smallest
// hashes of S's elements under a shared random hash function; |S| is then
// estimated as (k−1)/h_(k), where h_(k) is the k-th smallest hash mapped
// into (0, 1). Two sketches over the same hash merge into a sketch of the
// union by keeping the k smallest of the combined hash sets.
//
// With k = Θ(1/ε² · log 1/δ) the estimate has relative error at most ε
// with probability ≥ 1 − δ, matching the sketch interface the paper's
// Theorem 8 assumes ([9] in its references): O(1/ε² · log 1/δ) words,
// O(|S| log 1/δ) construction, constant-time estimation, and mergeability.
package sketch

import (
	"errors"
	"math"
	"sort"
)

// Hasher is the shared salted hash: elements must be hashed identically
// across all sketches that will be merged.
type Hasher struct {
	salt uint64
}

// NewHasher returns a hasher with the given salt (pick the salt with the
// structure's rng at build time).
func NewHasher(salt uint64) Hasher { return Hasher{salt: salt} }

// Hash maps an element id to a uniform 64-bit value (splitmix64 finaliser
// over the salted id; full avalanche, so distinct ids give independent-
// looking hashes).
func (h Hasher) Hash(element int) uint64 {
	x := uint64(element) ^ h.salt
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// KMV is a bottom-k sketch. The zero value is not usable; construct with
// NewKMV or Build.
type KMV struct {
	k int
	// hashes holds the smallest ≤ k distinct hashes seen, as a sorted
	// slice (ascending). For the sizes used here (k ≤ a few hundred) a
	// sorted slice beats a heap through cache behaviour and simplicity.
	hashes []uint64
	// seen counts distinct hashes when fewer than k have been observed
	// (then the estimate is exact).
	saturated bool
}

// ErrBadK is returned for k < 1.
var ErrBadK = errors.New("sketch: k must be at least 1")

// NewKMV returns an empty sketch with capacity k.
func NewKMV(k int) (*KMV, error) {
	if k < 1 {
		return nil, ErrBadK
	}
	return &KMV{k: k, hashes: make([]uint64, 0, k)}, nil
}

// KForEpsilonDelta returns a k giving relative error ≤ eps with
// probability ≥ 1−delta (standard KMV analysis: k ≈ 3/eps² · ln(2/δ)
// suffices by Chernoff bounds on the k-th order statistic).
func KForEpsilonDelta(eps, delta float64) int {
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		return 64
	}
	k := int(math.Ceil(3 / (eps * eps) * math.Log(2/delta)))
	if k < 8 {
		k = 8
	}
	return k
}

// Build constructs a sketch over the elements in O(|elements| + k log k)
// expected time.
func Build(h Hasher, k int, elements []int) (*KMV, error) {
	s, err := NewKMV(k)
	if err != nil {
		return nil, err
	}
	for _, e := range elements {
		s.Add(h.Hash(e))
	}
	return s, nil
}

// K returns the sketch capacity.
func (s *KMV) K() int { return s.k }

// Add inserts a hash value.
func (s *KMV) Add(hash uint64) {
	// Reject duplicates and values too large to matter.
	idx := sort.Search(len(s.hashes), func(i int) bool { return s.hashes[i] >= hash })
	if idx < len(s.hashes) && s.hashes[idx] == hash {
		return
	}
	if len(s.hashes) < s.k {
		s.hashes = append(s.hashes, 0)
		copy(s.hashes[idx+1:], s.hashes[idx:])
		s.hashes[idx] = hash
		if len(s.hashes) == s.k {
			s.saturated = true
		}
		return
	}
	if idx >= s.k {
		return // larger than the current k-th minimum
	}
	copy(s.hashes[idx+1:], s.hashes[idx:s.k-1])
	s.hashes[idx] = hash
}

// Merge folds other into s (s becomes a sketch of the union). Both must
// share the same k and hasher. O(k).
func (s *KMV) Merge(other *KMV) error {
	if other.k != s.k {
		return errors.New("sketch: merging sketches with different k")
	}
	merged := make([]uint64, 0, s.k)
	i, j := 0, 0
	var last uint64
	haveLast := false
	for len(merged) < s.k && (i < len(s.hashes) || j < len(other.hashes)) {
		var v uint64
		switch {
		case i >= len(s.hashes):
			v = other.hashes[j]
			j++
		case j >= len(other.hashes):
			v = s.hashes[i]
			i++
		case s.hashes[i] <= other.hashes[j]:
			v = s.hashes[i]
			i++
		default:
			v = other.hashes[j]
			j++
		}
		if haveLast && v == last {
			continue
		}
		merged = append(merged, v)
		last, haveLast = v, true
	}
	s.hashes = merged
	// Convention: with k distinct hashes retained, the estimator is in
	// force; below k the count is exact.
	s.saturated = len(s.hashes) == s.k
	return nil
}

// Clone returns an independent copy.
func (s *KMV) Clone() *KMV {
	return &KMV{k: s.k, hashes: append([]uint64(nil), s.hashes...), saturated: s.saturated}
}

// Estimate returns the estimated number of distinct elements.
func (s *KMV) Estimate() float64 {
	if !s.saturated {
		return float64(len(s.hashes)) // exact below k
	}
	kth := s.hashes[s.k-1]
	frac := (float64(kth) + 1) / math.Pow(2, 64) // map to (0,1]
	return float64(s.k-1) / frac
}
