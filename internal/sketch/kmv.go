// Package sketch implements the KMV (k minimum values, "bottom-k")
// distinct-count sketch used by the set union sampling structure of
// Section 7 of the paper. A sketch of a set S stores the k smallest
// hashes of S's elements under a shared random hash function; |S| is then
// estimated as (k−1)/h_(k), where h_(k) is the k-th smallest hash mapped
// into (0, 1). Two sketches over the same hash merge into a sketch of the
// union by keeping the k smallest of the combined hash sets.
//
// With k = Θ(1/ε² · log 1/δ) the estimate has relative error at most ε
// with probability ≥ 1 − δ, matching the sketch interface the paper's
// Theorem 8 assumes ([9] in its references): O(1/ε² · log 1/δ) words,
// O(|S| log 1/δ) construction, constant-time estimation, and mergeability.
package sketch

import (
	"errors"
	"math"
	"math/bits"
	"sort"
)

// Hasher is the shared salted hash: elements must be hashed identically
// across all sketches that will be merged.
type Hasher struct {
	salt uint64
}

// NewHasher returns a hasher with the given salt (pick the salt with the
// structure's rng at build time).
func NewHasher(salt uint64) Hasher { return Hasher{salt: salt} }

// Hash maps an element id to a uniform 64-bit value (splitmix64 finaliser
// over the salted id; full avalanche, so distinct ids give independent-
// looking hashes).
func (h Hasher) Hash(element int) uint64 { return h.Hash64(uint64(element)) }

// Hash64 maps a raw 64-bit key through the same salted finaliser.
func (h Hasher) Hash64(key uint64) uint64 {
	x := key ^ h.salt
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashFloat hashes a float64 value by its bit pattern, folding -0 into
// +0 so the two representations of zero count as one distinct value.
// Distinct-count sketches over dataset values hash through this, so
// sketches built independently (per shard, per overlay stream) agree on
// every value's hash and stay mergeable.
func (h Hasher) HashFloat(v float64) uint64 {
	if v == 0 {
		v = 0
	}
	return h.Hash64(math.Float64bits(v))
}

// KMV is a bottom-k sketch. The zero value is not usable; construct with
// NewKMV or Build.
type KMV struct {
	k int
	// hashes holds the smallest ≤ k distinct hashes seen, as a sorted
	// slice (ascending). For the sizes used here (k ≤ a few hundred) a
	// sorted slice beats a heap through cache behaviour and simplicity.
	hashes []uint64
	// seen counts distinct hashes when fewer than k have been observed
	// (then the estimate is exact).
	saturated bool
}

// ErrBadK is returned for k < 1.
var ErrBadK = errors.New("sketch: k must be at least 1")

// NewKMV returns an empty sketch with capacity k.
func NewKMV(k int) (*KMV, error) {
	if k < 1 {
		return nil, ErrBadK
	}
	return &KMV{k: k, hashes: make([]uint64, 0, k)}, nil
}

// MaxK caps the k KForEpsilonDelta returns: past ~4M retained hashes
// (32 MB per sketch) an exact hash set costs the same memory and gives
// zero error, so a larger sketch is never the right tool.
const MaxK = 1 << 22

// KForEpsilonDelta returns a k giving relative error ≤ eps with
// probability ≥ 1−delta (standard KMV analysis: k ≈ 3/eps² · ln(2/δ)
// suffices by Chernoff bounds on the k-th order statistic). The result
// is clamped to [8, MaxK]: tiny eps/delta push the float formula past
// what int can hold, and the unguarded conversion was
// platform-dependent garbage (negative on amd64).
func KForEpsilonDelta(eps, delta float64) int {
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		return 64
	}
	k := math.Ceil(3 / (eps * eps) * math.Log(2/delta))
	if !(k >= 8) { // also catches NaN
		return 8
	}
	if k > MaxK {
		return MaxK
	}
	return int(k)
}

// Build constructs a sketch over the elements in O(|elements| + k log k)
// expected time.
func Build(h Hasher, k int, elements []int) (*KMV, error) {
	s, err := NewKMV(k)
	if err != nil {
		return nil, err
	}
	for _, e := range elements {
		s.Add(h.Hash(e))
	}
	return s, nil
}

// K returns the sketch capacity.
func (s *KMV) K() int { return s.k }

// Add inserts a hash value.
func (s *KMV) Add(hash uint64) {
	// Reject duplicates and values too large to matter.
	idx := sort.Search(len(s.hashes), func(i int) bool { return s.hashes[i] >= hash })
	if idx < len(s.hashes) && s.hashes[idx] == hash {
		return
	}
	if len(s.hashes) < s.k {
		s.hashes = append(s.hashes, 0)
		copy(s.hashes[idx+1:], s.hashes[idx:])
		s.hashes[idx] = hash
		if len(s.hashes) == s.k {
			s.saturated = true
		}
		return
	}
	if idx >= s.k {
		return // larger than the current k-th minimum
	}
	copy(s.hashes[idx+1:], s.hashes[idx:s.k-1])
	s.hashes[idx] = hash
}

// Merge folds other into s (s becomes a sketch of the union). Both must
// share the same k and hasher. O(k).
func (s *KMV) Merge(other *KMV) error {
	if other.k != s.k {
		return errors.New("sketch: merging sketches with different k")
	}
	merged := make([]uint64, 0, s.k)
	i, j := 0, 0
	var last uint64
	haveLast := false
	for len(merged) < s.k && (i < len(s.hashes) || j < len(other.hashes)) {
		var v uint64
		switch {
		case i >= len(s.hashes):
			v = other.hashes[j]
			j++
		case j >= len(other.hashes):
			v = s.hashes[i]
			i++
		case s.hashes[i] <= other.hashes[j]:
			v = s.hashes[i]
			i++
		default:
			v = other.hashes[j]
			j++
		}
		if haveLast && v == last {
			continue
		}
		merged = append(merged, v)
		last, haveLast = v, true
	}
	s.hashes = merged
	// Convention: with k distinct hashes retained, the estimator is in
	// force; below k the count is exact.
	s.saturated = len(s.hashes) == s.k
	return nil
}

// Clone returns an independent copy.
func (s *KMV) Clone() *KMV {
	return &KMV{k: s.k, hashes: append([]uint64(nil), s.hashes...), saturated: s.saturated}
}

// Saturated reports whether the sketch has retained k hashes (the
// estimator regime); below that the distinct count is exact.
func (s *KMV) Saturated() bool { return s.saturated }

// Hashes exposes the retained hashes in ascending order. The slice is
// the sketch's own backing store: callers must not mutate it and must
// stop using it after the next Add/Merge (clone the sketch first when a
// stable view is needed).
func (s *KMV) Hashes() []uint64 { return s.hashes }

// Estimate returns the estimated number of distinct elements.
func (s *KMV) Estimate() float64 {
	if !s.saturated {
		return float64(len(s.hashes)) // exact below k
	}
	return DistinctGivenKth(s.k-1, s.hashes[s.k-1])
}

// DistinctGivenKth returns m / frac(kth), where frac(h) = (h+1)/2^64
// maps a hash to its quantile in (0, 1] — the KMV estimator for m
// retained hashes strictly below the excluded k-th minimum kth, and the
// shared kernel of every threshold-sampling estimator layered on these
// sketches (internal/estimate merges per-shard views through it).
//
// The ratio is computed with integer-exact arithmetic: m·2^64/(kth+1)
// via a 128-by-64-bit division, then rounded once. Converting kth
// through float64 first (the old path) discards the low 11 bits of any
// hash above 2^53, which systematically biases estimates whose k-th
// minimum lands in the upper hash range (small sets just past
// saturation, merged sketches of overlapping shards). Requires m ≤ kth,
// which holds for any threshold sample: m distinct hashes below kth
// need kth ≥ m.
func DistinctGivenKth(m int, kth uint64) float64 {
	if m <= 0 {
		return 0
	}
	if kth == math.MaxUint64 {
		return float64(m) // frac is exactly 1
	}
	d := kth + 1
	q, r := bits.Div64(uint64(m), 0, d) // m·2^64 / d, exact
	return float64(q) + float64(r)/float64(d)
}
