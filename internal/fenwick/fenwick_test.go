package fenwick

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestEmpty(t *testing.T) {
	tr := New(0)
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Total() != 0 {
		t.Fatalf("Total = %v", tr.Total())
	}
}

func TestAddAndPrefixSum(t *testing.T) {
	tr := New(10)
	tr.Add(0, 1)
	tr.Add(5, 2)
	tr.Add(9, 4)
	cases := []struct {
		i    int
		want float64
	}{{0, 1}, {4, 1}, {5, 3}, {8, 3}, {9, 7}}
	for _, c := range cases {
		if got := tr.PrefixSum(c.i); got != c.want {
			t.Fatalf("PrefixSum(%d) = %v, want %v", c.i, got, c.want)
		}
	}
	if got := tr.PrefixSum(-1); got != 0 {
		t.Fatalf("PrefixSum(-1) = %v", got)
	}
}

func TestFromSliceMatchesAdds(t *testing.T) {
	f := func(raw []uint8) bool {
		vals := make([]float64, len(raw))
		for i, v := range raw {
			vals[i] = float64(v) / 3
		}
		a := FromSlice(vals)
		b := New(len(vals))
		for i, v := range vals {
			b.Add(i, v)
		}
		for i := range vals {
			if math.Abs(a.PrefixSum(i)-b.PrefixSum(i)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRangeSum(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	tr := FromSlice(vals)
	if got := tr.RangeSum(1, 3); got != 9 {
		t.Fatalf("RangeSum(1,3) = %v", got)
	}
	if got := tr.RangeSum(0, 4); got != 15 {
		t.Fatalf("RangeSum(0,4) = %v", got)
	}
	if got := tr.RangeSum(2, 2); got != 3 {
		t.Fatalf("RangeSum(2,2) = %v", got)
	}
	if got := tr.RangeSum(3, 1); got != 0 {
		t.Fatalf("RangeSum(3,1) = %v, want 0", got)
	}
}

func TestRangeSumAgainstNaive(t *testing.T) {
	r := rng.New(12)
	const n = 64
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = r.Float64() * 10
	}
	tr := FromSlice(vals)
	for a := 0; a < n; a++ {
		for b := a; b < n; b++ {
			want := 0.0
			for i := a; i <= b; i++ {
				want += vals[i]
			}
			if got := tr.RangeSum(a, b); math.Abs(got-want) > 1e-6 {
				t.Fatalf("RangeSum(%d,%d) = %v, want %v", a, b, got, want)
			}
		}
	}
}

func TestPanicsOnBadIndex(t *testing.T) {
	tr := New(5)
	for _, fn := range []func(){
		func() { tr.Add(-1, 1) },
		func() { tr.Add(5, 1) },
		func() { tr.PrefixSum(5) },
		func() { tr.RangeSum(-1, 3) },
		func() { tr.RangeSum(0, 5) },
		func() { New(-1) },
		func() { New(0).WeightedSearch(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestWeightedSearch(t *testing.T) {
	tr := FromSlice([]float64{1, 0, 2, 0, 3}) // prefix sums: 1,1,3,3,6
	cases := []struct {
		x    float64
		want int
	}{{0, 0}, {0.99, 0}, {1, 2}, {2.5, 2}, {3, 4}, {5.9, 4}, {6, 4}, {100, 4}}
	for _, c := range cases {
		if got := tr.WeightedSearch(c.x); got != c.want {
			t.Fatalf("WeightedSearch(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestWeightedSearchDistribution(t *testing.T) {
	// Sampling positions by WeightedSearch(U*Total) must reproduce the
	// weight distribution — this is the inverse-CDF sampler used by the
	// EM code.
	r := rng.New(21)
	weights := []float64{1, 2, 4, 1, 8}
	tr := FromSlice(weights)
	const draws = 200000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[tr.WeightedSearch(r.Float64()*tr.Total())]++
	}
	total := tr.Total()
	for i, c := range counts {
		expected := float64(draws) * weights[i] / total
		if math.Abs(float64(c)-expected) > 6*math.Sqrt(expected+1) {
			t.Fatalf("position %d count %d, expected ~%v", i, c, expected)
		}
	}
}

func TestDynamicUpdates(t *testing.T) {
	tr := FromSlice([]float64{1, 1, 1, 1})
	tr.Add(2, 5)    // now 1,1,6,1
	tr.Add(0, -0.5) // now 0.5,1,6,1
	if got := tr.Total(); math.Abs(got-8.5) > 1e-12 {
		t.Fatalf("Total = %v", got)
	}
	if got := tr.RangeSum(1, 2); math.Abs(got-7) > 1e-12 {
		t.Fatalf("RangeSum(1,2) = %v", got)
	}
}

func BenchmarkPrefixSum(b *testing.B) {
	r := rng.New(1)
	const n = 1 << 20
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = r.Float64()
	}
	tr := FromSlice(vals)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = tr.PrefixSum(i & (n - 1))
	}
	_ = sink
}

func BenchmarkWeightedSearch(b *testing.B) {
	r := rng.New(1)
	const n = 1 << 20
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = r.Float64()
	}
	tr := FromSlice(vals)
	total := tr.Total()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink = tr.WeightedSearch(r.Float64() * total)
	}
	_ = sink
}
