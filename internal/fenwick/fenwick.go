// Package fenwick implements a binary indexed tree (Fenwick tree) over
// float64 weights, providing prefix and range sums in O(log n) time and
// point updates in O(log n) time.
//
// The paper's Theorem 3 structure needs a "range sum structure which
// allows us to calculate Σ_{i=a}^{b} w(I_i) in O(log n) time" (Section
// 4.2); this package is that structure. It also provides WeightedSearch,
// the inverse-CDF lookup used to locate the chunk containing a given
// cumulative weight, which the EM structures use for block-level
// sampling.
package fenwick

import "fmt"

// Tree is a Fenwick tree over n float64 values, indexed 0..n-1.
type Tree struct {
	tree []float64 // 1-based internal array
	n    int
}

// New returns a Fenwick tree of n zeros.
func New(n int) *Tree {
	if n < 0 {
		panic(fmt.Sprintf("fenwick: negative size %d", n))
	}
	return &Tree{tree: make([]float64, n+1), n: n}
}

// FromSlice builds a tree initialised to vals in O(n) time.
func FromSlice(vals []float64) *Tree {
	t := New(len(vals))
	copy(t.tree[1:], vals)
	// In-place O(n) construction: push each node's value to its parent.
	for i := 1; i <= t.n; i++ {
		parent := i + (i & -i)
		if parent <= t.n {
			t.tree[parent] += t.tree[i]
		}
	}
	return t
}

// Len returns the number of indexed positions.
func (t *Tree) Len() int { return t.n }

// Add adds delta to position i.
func (t *Tree) Add(i int, delta float64) {
	if i < 0 || i >= t.n {
		panic(fmt.Sprintf("fenwick: index %d out of range [0,%d)", i, t.n))
	}
	for j := i + 1; j <= t.n; j += j & -j {
		t.tree[j] += delta
	}
}

// PrefixSum returns the sum of positions [0, i]. PrefixSum(-1) is 0.
func (t *Tree) PrefixSum(i int) float64 {
	if i >= t.n {
		panic(fmt.Sprintf("fenwick: index %d out of range [0,%d)", i, t.n))
	}
	sum := 0.0
	for j := i + 1; j > 0; j -= j & -j {
		sum += t.tree[j]
	}
	return sum
}

// RangeSum returns the sum of positions [a, b] inclusive. Returns 0 when
// a > b.
func (t *Tree) RangeSum(a, b int) float64 {
	if a > b {
		return 0
	}
	if a < 0 || b >= t.n {
		panic(fmt.Sprintf("fenwick: range [%d,%d] out of [0,%d)", a, b, t.n))
	}
	return t.PrefixSum(b) - t.PrefixSum(a-1)
}

// Total returns the sum of all positions.
func (t *Tree) Total() float64 {
	if t.n == 0 {
		return 0
	}
	return t.PrefixSum(t.n - 1)
}

// WeightedSearch returns the smallest index i such that
// PrefixSum(i) > x, i.e. the position selected by cumulative weight x ∈
// [0, Total()). If x ≥ Total() (possible through floating-point slack),
// the last position with positive influence is returned. O(log n).
func (t *Tree) WeightedSearch(x float64) int {
	if t.n == 0 {
		panic("fenwick: WeightedSearch on empty tree")
	}
	pos := 0
	// Largest power of two ≤ n.
	bit := 1
	for bit<<1 <= t.n {
		bit <<= 1
	}
	for ; bit > 0; bit >>= 1 {
		next := pos + bit
		if next <= t.n && t.tree[next] <= x {
			x -= t.tree[next]
			pos = next
		}
	}
	if pos >= t.n {
		pos = t.n - 1
	}
	return pos
}
