// Package treesample implements the tree sampling problem of Section 3.2
// of the paper and its improvement in Section 5:
//
// Tree Sampling: T is a tree of n nodes whose leaves carry positive
// weights; w(u) of an internal node is the total weight of the leaves in
// its subtree. Given a node q and an integer s ≥ 1, a query returns s
// independent weighted samples from the subtree of q, and all queries'
// outputs are mutually independent.
//
// Two samplers are provided:
//
//	WalkSampler   §3.2: an alias structure (Theorem 1) at every internal
//	              node over its children; one sample costs O(height).
//	EulerSampler  §5 / Lemma 4: a depth-first traversal linearises the
//	              leaves (Proposition 1: every subtree spans a contiguous
//	              leaf range), reducing tree sampling to element-aligned
//	              weighted range sampling. Queries cost O(1+s) for
//	              uniform weights and O(log n + s) otherwise (DESIGN.md
//	              substitution 1).
//
// Trees are built with Builder, which supports arbitrary fanout.
package treesample

import (
	"errors"
	"fmt"

	"repro/internal/alias"
	"repro/internal/rangesample"
	"repro/internal/rng"
	"repro/internal/scratch"
)

// NodeID identifies a node of a Tree; the root of a built tree is
// Tree.Root().
type NodeID int32

// Builder assembles a rooted tree incrementally.
type Builder struct {
	parent  []NodeID
	weights []float64 // per node; only leaf values are used
	built   bool
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// AddRoot creates the root node and returns its id. It must be called
// exactly once, before any AddChild.
func (b *Builder) AddRoot() NodeID {
	if len(b.parent) != 0 {
		panic("treesample: AddRoot called twice")
	}
	b.parent = append(b.parent, -1)
	b.weights = append(b.weights, 0)
	return 0
}

// AddChild creates a new child of p and returns its id.
func (b *Builder) AddChild(p NodeID) NodeID {
	if int(p) < 0 || int(p) >= len(b.parent) {
		panic(fmt.Sprintf("treesample: AddChild of unknown node %d", p))
	}
	id := NodeID(len(b.parent))
	b.parent = append(b.parent, p)
	b.weights = append(b.weights, 0)
	return id
}

// SetLeafWeight assigns the weight of a leaf node. Calling it on a node
// that later gains children is an error detected at Build time.
func (b *Builder) SetLeafWeight(id NodeID, w float64) {
	b.weights[id] = w
}

// ErrNoNodes is returned by Build on an empty builder.
var ErrNoNodes = errors.New("treesample: no nodes")

// ErrBadLeafWeight is returned when a leaf has no positive weight.
var ErrBadLeafWeight = errors.New("treesample: every leaf needs a positive finite weight")

// Build finalises the tree. Every leaf must have been given a positive
// weight via SetLeafWeight.
func (b *Builder) Build() (*Tree, error) {
	if len(b.parent) == 0 {
		return nil, ErrNoNodes
	}
	n := len(b.parent)
	t := &Tree{
		parent:   append([]NodeID(nil), b.parent...),
		children: make([][]NodeID, n),
		weight:   make([]float64, n),
		spanLo:   make([]int32, n),
		spanHi:   make([]int32, n),
		depth:    make([]int32, n),
	}
	for id := 1; id < n; id++ {
		p := b.parent[id]
		t.children[p] = append(t.children[p], NodeID(id))
	}
	// Depth-first traversal from the root: assign Euler leaf order,
	// spans, subtree weights and depths. Iterative to handle deep trees.
	type frame struct {
		id    NodeID
		child int
	}
	stack := []frame{{id: 0}}
	t.depth[0] = 0
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		kids := t.children[f.id]
		if f.child == 0 {
			if len(kids) == 0 { // leaf
				w := b.weights[f.id]
				if !(w > 0) {
					return nil, fmt.Errorf("%w: node %d", ErrBadLeafWeight, f.id)
				}
				pos := int32(len(t.leafOrder))
				t.spanLo[f.id], t.spanHi[f.id] = pos, pos
				t.weight[f.id] = w
				t.leafOrder = append(t.leafOrder, f.id)
				t.leafWeights = append(t.leafWeights, w)
				stack = stack[:len(stack)-1]
				continue
			}
			t.spanLo[f.id] = int32(len(t.leafOrder))
		}
		if f.child < len(kids) {
			c := kids[f.child]
			f.child++
			t.depth[c] = t.depth[f.id] + 1
			stack = append(stack, frame{id: c})
			continue
		}
		// All children done.
		t.spanHi[f.id] = int32(len(t.leafOrder)) - 1
		sum := 0.0
		for _, c := range kids {
			sum += t.weight[c]
		}
		t.weight[f.id] = sum
		stack = stack[:len(stack)-1]
	}
	b.built = true
	return t, nil
}

// FromParents builds a tree directly from a parent array: parent[i] is
// the parent of node i (parent[0] must be -1, the root), and
// leafWeights[i] must be positive for every node that never appears as a
// parent. Convenience over Builder for bulk construction.
func FromParents(parent []int, leafWeights []float64) (*Tree, error) {
	if len(parent) == 0 {
		return nil, ErrNoNodes
	}
	if len(leafWeights) != len(parent) {
		return nil, fmt.Errorf("treesample: %d weights for %d nodes", len(leafWeights), len(parent))
	}
	if parent[0] != -1 {
		return nil, fmt.Errorf("treesample: node 0 must be the root (parent -1), got %d", parent[0])
	}
	b := NewBuilder()
	b.AddRoot()
	for i := 1; i < len(parent); i++ {
		p := parent[i]
		if p < 0 || p >= i {
			return nil, fmt.Errorf("treesample: parent[%d] = %d must be in [0, %d)", i, p, i)
		}
		b.AddChild(NodeID(p))
	}
	for i, w := range leafWeights {
		if w != 0 {
			b.SetLeafWeight(NodeID(i), w)
		}
	}
	return b.Build()
}

// Tree is a finalised weighted tree.
type Tree struct {
	parent      []NodeID
	children    [][]NodeID
	weight      []float64
	spanLo      []int32 // contiguous Euler leaf span per node (Prop. 1)
	spanHi      []int32
	depth       []int32
	leafOrder   []NodeID  // leaves in depth-first order (the sequence Π)
	leafWeights []float64 // weights aligned with leafOrder
}

// Root returns the root node id.
func (t *Tree) Root() NodeID { return 0 }

// NumNodes returns the number of nodes.
func (t *Tree) NumNodes() int { return len(t.parent) }

// NumLeaves returns the number of leaves.
func (t *Tree) NumLeaves() int { return len(t.leafOrder) }

// Children returns the children of id (aliases internal state).
func (t *Tree) Children(id NodeID) []NodeID { return t.children[id] }

// IsLeaf reports whether id has no children.
func (t *Tree) IsLeaf(id NodeID) bool { return len(t.children[id]) == 0 }

// Weight returns w(id): the node's weight (leaf) or total subtree leaf
// weight (internal).
func (t *Tree) Weight(id NodeID) float64 { return t.weight[id] }

// Depth returns the node's depth (root = 0).
func (t *Tree) Depth(id NodeID) int { return int(t.depth[id]) }

// Span returns the node's contiguous Euler leaf range [lo, hi]
// (Proposition 1).
func (t *Tree) Span(id NodeID) (lo, hi int) {
	return int(t.spanLo[id]), int(t.spanHi[id])
}

// LeafAt returns the leaf node occupying Euler position pos.
func (t *Tree) LeafAt(pos int) NodeID { return t.leafOrder[pos] }

// LeafWeights returns the weights of the Euler leaf sequence (aliases
// internal state).
func (t *Tree) LeafWeights() []float64 { return t.leafWeights }

// WalkSampler is the §3.2 structure: an alias table per internal node
// over its children's subtree weights. Space O(n); one sample costs time
// proportional to the height of the queried subtree.
type WalkSampler struct {
	tree *Tree
	// childAlias[id] samples a child index of node id; nil for leaves
	// and for nodes with a single child (where the choice is forced).
	childAlias []*alias.Alias
}

// NewWalkSampler preprocesses t in O(n) total time (Theorem 1 per node).
func NewWalkSampler(t *Tree) *WalkSampler {
	ws := &WalkSampler{tree: t, childAlias: make([]*alias.Alias, t.NumNodes())}
	for id := 0; id < t.NumNodes(); id++ {
		kids := t.children[id]
		if len(kids) < 2 {
			continue
		}
		w := make([]float64, len(kids))
		for i, c := range kids {
			w[i] = t.weight[c]
		}
		ws.childAlias[id] = alias.MustNew(w)
	}
	return ws
}

// Sample draws one independent weighted leaf from the subtree of q by
// the top-down strategy. O(height of subtree) time.
func (ws *WalkSampler) Sample(r *rng.Source, q NodeID) NodeID {
	t := ws.tree
	for !t.IsLeaf(q) {
		kids := t.children[q]
		if len(kids) == 1 {
			q = kids[0]
			continue
		}
		q = kids[ws.childAlias[q].Sample(r)]
	}
	return q
}

// Query appends s independent weighted leaf samples from the subtree of
// q to dst.
func (ws *WalkSampler) Query(r *rng.Source, q NodeID, s int, dst []NodeID) []NodeID {
	for i := 0; i < s; i++ {
		dst = append(dst, ws.Sample(r, q))
	}
	return dst
}

// EulerSampler is the Section 5 structure: tree sampling reduced to
// element-aligned weighted range sampling over the depth-first leaf
// sequence Π (Lemma 4). O(n) — or O(n log n) for non-uniform weights —
// space; a query costs O(1+s) for uniform weights and O(log n + s)
// otherwise.
type EulerSampler struct {
	tree *Tree
	pos  *rangesample.PosSampler
}

// NewEulerSampler preprocesses t.
func NewEulerSampler(t *Tree) *EulerSampler {
	return &EulerSampler{tree: t, pos: rangesample.NewPosSampler(t.leafWeights)}
}

// Sample draws one independent weighted leaf from the subtree of q.
func (es *EulerSampler) Sample(r *rng.Source, q NodeID) NodeID {
	var buf [1]int
	out := es.pos.Query(r, int(es.tree.spanLo[q]), int(es.tree.spanHi[q]), 1, buf[:0])
	return es.tree.leafOrder[out[0]]
}

// Query appends s independent weighted leaf samples from the subtree of
// q to dst.
func (es *EulerSampler) Query(r *rng.Source, q NodeID, s int, dst []NodeID) []NodeID {
	sc := scratch.Get()
	defer scratch.Put(sc)
	return es.QueryScratch(r, q, s, dst, sc)
}

// QueryScratch is Query with the Euler-position buffer and the range
// sampler's temporaries drawn from sc, so a warm arena answers subtree
// queries allocation-free. Randomness consumption matches Query exactly.
func (es *EulerSampler) QueryScratch(r *rng.Source, q NodeID, s int, dst []NodeID, sc *scratch.Arena) []NodeID {
	buf := es.pos.QueryScratch(r, int(es.tree.spanLo[q]), int(es.tree.spanHi[q]), s, sc.Pos(s), sc)
	for _, pos := range buf {
		dst = append(dst, es.tree.leafOrder[pos])
	}
	return dst
}
