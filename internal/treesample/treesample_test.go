package treesample

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// buildSampleTree builds the tree used across tests:
//
//	     root
//	    /    \
//	   a      b
//	 / | \     \
//	L1 L2 L3    c
//	           / \
//	         L4   L5
//
// with leaf weights L1..L5 = 1, 2, 3, 4, 10.
func buildSampleTree(t *testing.T) (*Tree, map[string]NodeID) {
	t.Helper()
	b := NewBuilder()
	root := b.AddRoot()
	a := b.AddChild(root)
	bb := b.AddChild(root)
	l1 := b.AddChild(a)
	l2 := b.AddChild(a)
	l3 := b.AddChild(a)
	c := b.AddChild(bb)
	l4 := b.AddChild(c)
	l5 := b.AddChild(c)
	b.SetLeafWeight(l1, 1)
	b.SetLeafWeight(l2, 2)
	b.SetLeafWeight(l3, 3)
	b.SetLeafWeight(l4, 4)
	b.SetLeafWeight(l5, 10)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tree, map[string]NodeID{
		"root": root, "a": a, "b": bb, "c": c,
		"l1": l1, "l2": l2, "l3": l3, "l4": l4, "l5": l5,
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := NewBuilder().Build(); err != ErrNoNodes {
		t.Fatalf("err = %v", err)
	}
	b := NewBuilder()
	root := b.AddRoot()
	b.AddChild(root) // leaf without weight
	if _, err := b.Build(); err == nil {
		t.Fatal("leaf without weight accepted")
	}
	b2 := NewBuilder()
	r2 := b2.AddRoot()
	l := b2.AddChild(r2)
	b2.SetLeafWeight(l, -1)
	if _, err := b2.Build(); err == nil {
		t.Fatal("negative leaf weight accepted")
	}
}

func TestBuilderPanics(t *testing.T) {
	b := NewBuilder()
	b.AddRoot()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("double AddRoot did not panic")
			}
		}()
		b.AddRoot()
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("AddChild of unknown node did not panic")
			}
		}()
		b.AddChild(99)
	}()
}

func TestTreeInvariants(t *testing.T) {
	tree, ids := buildSampleTree(t)
	if tree.NumNodes() != 9 || tree.NumLeaves() != 5 {
		t.Fatalf("nodes/leaves = %d/%d", tree.NumNodes(), tree.NumLeaves())
	}
	// Subtree weights.
	wants := map[string]float64{
		"root": 20, "a": 6, "b": 14, "c": 14,
		"l1": 1, "l2": 2, "l3": 3, "l4": 4, "l5": 10,
	}
	for name, want := range wants {
		if got := tree.Weight(ids[name]); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Weight(%s) = %v, want %v", name, got, want)
		}
	}
	// Proposition 1: spans are contiguous and nested.
	lo, hi := tree.Span(ids["root"])
	if lo != 0 || hi != 4 {
		t.Fatalf("root span [%d,%d]", lo, hi)
	}
	alo, ahi := tree.Span(ids["a"])
	if ahi-alo != 2 {
		t.Fatalf("a span [%d,%d]", alo, ahi)
	}
	clo, chi := tree.Span(ids["c"])
	blo, bhi := tree.Span(ids["b"])
	if clo != blo || chi != bhi {
		t.Fatalf("c span [%d,%d] != b span [%d,%d]", clo, chi, blo, bhi)
	}
	// Depths.
	if tree.Depth(ids["root"]) != 0 || tree.Depth(ids["l4"]) != 3 {
		t.Fatalf("depths root=%d l4=%d", tree.Depth(ids["root"]), tree.Depth(ids["l4"]))
	}
	// Leaf order covers all leaves once.
	seen := map[NodeID]bool{}
	for i := 0; i < tree.NumLeaves(); i++ {
		leaf := tree.LeafAt(i)
		if !tree.IsLeaf(leaf) || seen[leaf] {
			t.Fatalf("leaf order broken at %d", i)
		}
		seen[leaf] = true
	}
}

func checkSubtreeDistribution(t *testing.T, tree *Tree, q NodeID, draw func(*rng.Source) NodeID, seed uint64) {
	t.Helper()
	lo, hi := tree.Span(q)
	total := tree.Weight(q)
	r := rng.New(seed)
	const draws = 200000
	counts := map[NodeID]int{}
	for i := 0; i < draws; i++ {
		leaf := draw(r)
		plo, _ := tree.Span(leaf)
		if plo < lo || plo > hi {
			t.Fatalf("sampled leaf %d outside subtree span [%d,%d]", leaf, lo, hi)
		}
		counts[leaf]++
	}
	for pos := lo; pos <= hi; pos++ {
		leaf := tree.LeafAt(pos)
		expected := draws * tree.Weight(leaf) / total
		if math.Abs(float64(counts[leaf])-expected) > 6*math.Sqrt(expected) {
			t.Fatalf("leaf %d sampled %d times, expected ~%v", leaf, counts[leaf], expected)
		}
	}
}

func TestWalkSamplerDistribution(t *testing.T) {
	tree, ids := buildSampleTree(t)
	ws := NewWalkSampler(tree)
	for i, q := range []NodeID{ids["root"], ids["a"], ids["b"], ids["c"]} {
		checkSubtreeDistribution(t, tree, q, func(r *rng.Source) NodeID {
			return ws.Sample(r, q)
		}, uint64(100+i))
	}
}

func TestEulerSamplerDistribution(t *testing.T) {
	tree, ids := buildSampleTree(t)
	es := NewEulerSampler(tree)
	for i, q := range []NodeID{ids["root"], ids["a"], ids["b"], ids["c"]} {
		checkSubtreeDistribution(t, tree, q, func(r *rng.Source) NodeID {
			return es.Sample(r, q)
		}, uint64(200+i))
	}
}

func TestLeafQueryReturnsSelf(t *testing.T) {
	tree, ids := buildSampleTree(t)
	ws := NewWalkSampler(tree)
	es := NewEulerSampler(tree)
	r := rng.New(3)
	for _, name := range []string{"l1", "l5"} {
		if got := ws.Sample(r, ids[name]); got != ids[name] {
			t.Fatalf("walk Sample(%s) = %d", name, got)
		}
		if got := es.Sample(r, ids[name]); got != ids[name] {
			t.Fatalf("euler Sample(%s) = %d", name, got)
		}
	}
}

func TestQueryBatch(t *testing.T) {
	tree, ids := buildSampleTree(t)
	ws := NewWalkSampler(tree)
	es := NewEulerSampler(tree)
	r := rng.New(4)
	if got := ws.Query(r, ids["root"], 13, nil); len(got) != 13 {
		t.Fatalf("walk Query len = %d", len(got))
	}
	if got := es.Query(r, ids["root"], 13, nil); len(got) != 13 {
		t.Fatalf("euler Query len = %d", len(got))
	}
}

func TestUnaryChainTree(t *testing.T) {
	// Degenerate tree: a unary chain ending in one leaf. Exercises the
	// single-child fast path.
	b := NewBuilder()
	cur := b.AddRoot()
	for i := 0; i < 50; i++ {
		cur = b.AddChild(cur)
	}
	b.SetLeafWeight(cur, 7)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWalkSampler(tree)
	es := NewEulerSampler(tree)
	r := rng.New(5)
	if got := ws.Sample(r, tree.Root()); got != cur {
		t.Fatalf("walk got %d", got)
	}
	if got := es.Sample(r, tree.Root()); got != cur {
		t.Fatalf("euler got %d", got)
	}
	if tree.Depth(cur) != 50 {
		t.Fatalf("depth = %d", tree.Depth(cur))
	}
}

func TestWideFanout(t *testing.T) {
	// A star with 1000 leaves of weight i+1: exercises the per-node
	// alias with large fanout.
	b := NewBuilder()
	root := b.AddRoot()
	for i := 0; i < 1000; i++ {
		l := b.AddChild(root)
		b.SetLeafWeight(l, float64(i+1))
	}
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWalkSampler(tree)
	r := rng.New(6)
	const draws = 500000
	var sum float64
	for i := 0; i < draws; i++ {
		leaf := ws.Sample(r, tree.Root())
		sum += tree.Weight(leaf)
	}
	// E[w] = Σw²/Σw for weights 1..1000: Σw² = n(n+1)(2n+1)/6.
	n := 1000.0
	want := (n * (n + 1) * (2*n + 1) / 6) / (n * (n + 1) / 2)
	got := sum / draws
	if math.Abs(got-want)/want > 0.01 {
		t.Fatalf("mean sampled weight %v, want %v", got, want)
	}
}

func TestUniformLeavesUseFastPath(t *testing.T) {
	b := NewBuilder()
	root := b.AddRoot()
	for i := 0; i < 16; i++ {
		l := b.AddChild(root)
		b.SetLeafWeight(l, 1)
	}
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	es := NewEulerSampler(tree)
	r := rng.New(7)
	counts := map[NodeID]int{}
	const draws = 160000
	for i := 0; i < draws; i++ {
		counts[es.Sample(r, tree.Root())]++
	}
	expected := float64(draws) / 16
	for leaf, c := range counts {
		if math.Abs(float64(c)-expected) > 6*math.Sqrt(expected) {
			t.Fatalf("leaf %d count %d", leaf, c)
		}
	}
}

func BenchmarkWalkSample(b *testing.B) {
	bld := NewBuilder()
	root := bld.AddRoot()
	// Balanced binary tree of ~2^16 leaves via BFS construction.
	queue := []NodeID{root}
	for len(queue) < 1<<16 {
		nd := queue[0]
		queue = queue[1:]
		queue = append(queue, bld.AddChild(nd), bld.AddChild(nd))
	}
	r := rng.New(1)
	for _, leaf := range queue {
		bld.SetLeafWeight(leaf, r.Float64()+0.01)
	}
	tree, err := bld.Build()
	if err != nil {
		b.Fatal(err)
	}
	ws := NewWalkSampler(tree)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.Sample(r, tree.Root())
	}
}

func BenchmarkEulerSample(b *testing.B) {
	bld := NewBuilder()
	root := bld.AddRoot()
	queue := []NodeID{root}
	for len(queue) < 1<<16 {
		nd := queue[0]
		queue = queue[1:]
		queue = append(queue, bld.AddChild(nd), bld.AddChild(nd))
	}
	r := rng.New(1)
	for _, leaf := range queue {
		bld.SetLeafWeight(leaf, r.Float64()+0.01)
	}
	tree, err := bld.Build()
	if err != nil {
		b.Fatal(err)
	}
	es := NewEulerSampler(tree)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		es.Sample(r, tree.Root())
	}
}

func TestFromParents(t *testing.T) {
	// Same shape as buildSampleTree: root(0) -> a(1), b(2); a -> l1(3),
	// l2(4), l3(5); b -> c(6); c -> l4(7), l5(8).
	parent := []int{-1, 0, 0, 1, 1, 1, 2, 6, 6}
	weights := []float64{0, 0, 0, 1, 2, 3, 0, 4, 10}
	tree, err := FromParents(parent, weights)
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumNodes() != 9 || tree.NumLeaves() != 5 {
		t.Fatalf("nodes/leaves = %d/%d", tree.NumNodes(), tree.NumLeaves())
	}
	if got := tree.Weight(tree.Root()); math.Abs(got-20) > 1e-12 {
		t.Fatalf("root weight = %v", got)
	}
}

func TestFromParentsErrors(t *testing.T) {
	if _, err := FromParents(nil, nil); err != ErrNoNodes {
		t.Fatalf("err = %v", err)
	}
	if _, err := FromParents([]int{-1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := FromParents([]int{0}, []float64{1}); err == nil {
		t.Fatal("non-root node 0 accepted")
	}
	if _, err := FromParents([]int{-1, 5}, []float64{0, 1}); err == nil {
		t.Fatal("forward parent reference accepted")
	}
	if _, err := FromParents([]int{-1, 0}, []float64{0, 0}); err == nil {
		t.Fatal("leaf without weight accepted")
	}
}

func TestWalkAndEulerAgreeOnRandomTrees(t *testing.T) {
	// Property: on arbitrary random trees, the two samplers realise the
	// same distribution for the same subtree query.
	r := rng.New(300)
	for trial := 0; trial < 10; trial++ {
		// Random tree with 30-80 nodes: attach each new node to a random
		// existing one; leaves get random weights.
		b := NewBuilder()
		nodes := []NodeID{b.AddRoot()}
		total := 30 + r.Intn(50)
		for i := 1; i < total; i++ {
			nodes = append(nodes, b.AddChild(nodes[r.Intn(len(nodes))]))
		}
		tree0 := map[NodeID]bool{}
		for _, nd := range nodes {
			tree0[nd] = true
		}
		// Leaves = nodes that never became parents; find by trial build.
		for _, nd := range nodes {
			b.SetLeafWeight(nd, r.Float64()*5+0.1)
		}
		tree, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		ws := NewWalkSampler(tree)
		es := NewEulerSampler(tree)
		q := nodes[r.Intn(len(nodes))]
		const draws = 30000
		wc := map[NodeID]int{}
		ec := map[NodeID]int{}
		for i := 0; i < draws; i++ {
			wc[ws.Sample(r, q)]++
			ec[es.Sample(r, q)]++
		}
		// Two-sample chi2 over leaves with any mass.
		chi2 := 0.0
		dof := 0
		for leaf, a := range wc {
			x, y := float64(a), float64(ec[leaf])
			d := x - y
			chi2 += d * d / (x + y)
			dof++
		}
		for leaf, y := range ec {
			if _, dup := wc[leaf]; !dup {
				chi2 += float64(y)
				dof++
			}
		}
		if dof > 1 {
			crit := 50.0 + 3*float64(dof) // generous
			if chi2 > crit {
				t.Fatalf("trial %d: walk vs euler chi2 = %v (dof %d)", trial, chi2, dof)
			}
		}
	}
}

func TestChildrenAndLeafWeights(t *testing.T) {
	tree, ids := buildSampleTree(t)
	kids := tree.Children(ids["a"])
	if len(kids) != 3 {
		t.Fatalf("a has %d children", len(kids))
	}
	lw := tree.LeafWeights()
	if len(lw) != 5 {
		t.Fatalf("LeafWeights len = %d", len(lw))
	}
	sum := 0.0
	for _, w := range lw {
		sum += w
	}
	if math.Abs(sum-20) > 1e-12 {
		t.Fatalf("leaf weight sum = %v", sum)
	}
}
