package core

import (
	"context"
	"errors"
	"sort"

	"repro/internal/rangesample"
	"repro/internal/wor"
)

// Context-aware entry points. Every long-running loop — naive report
// scans, batched draws, WoR dedupe loops, chunked (re)builds — polls the
// context cooperatively at least every PollEvery units of work, so a
// canceled or deadline-expired request returns ctx.Err() promptly
// instead of holding a goroutine until the query completes. These are
// the paths internal/service threads per-request deadlines through.

// PollEvery is the cancellation poll granularity of the context-aware
// sampling paths: the number of samples drawn (or dedupe attempts made)
// between ctx.Err checks.
const PollEvery = 256

// ErrEmptyRange is returned by the context-aware sampling paths when
// S ∩ [lo, hi] is empty (the plain paths report this as ok=false).
var ErrEmptyRange = errors.New("core: empty range")

// NewRangeSamplerContext is NewRangeSampler honouring ctx during the
// build: the chunked structure polls ctx inside its per-chunk loop, and
// every kind checks ctx before and after the O(n log n) work. Returns
// ctx.Err() when the build was abandoned.
func NewRangeSamplerContext(ctx context.Context, kind Kind, values, weights []float64) (*RangeSampler, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if kind == KindChunked {
		if err := validateSeries(values, weights); err != nil {
			return nil, err
		}
		w := weights
		if w == nil {
			w = make([]float64, len(values))
			for i := range w {
				w[i] = 1
			}
		}
		inner, err := rangesample.NewChunkedStop(values, w, func() bool { return ctx.Err() != nil })
		if err != nil {
			if errors.Is(err, rangesample.ErrCanceled) {
				return nil, ctx.Err()
			}
			return nil, err
		}
		return finishRangeSampler(kind, inner), nil
	}
	s, err := NewRangeSampler(kind, values, weights)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// SampleContext is Sample honouring ctx: draws are made in batches of at
// most PollEvery with a ctx check between batches, and the naive
// structure additionally polls ctx inside its O(|S_q|) report scan.
// Returns ErrEmptyRange when the range holds no elements and ctx.Err()
// on cancellation; the two never mix with a non-nil sample slice.
func (s *RangeSampler) SampleContext(ctx context.Context, r *Rand, lo, hi float64, k int) ([]float64, error) {
	if err := ValidateRange(lo, hi); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, nil
	}
	if st, isStop := s.inner.(rangesample.StopSampler); isStop {
		// One call: the structure polls ctx inside its own long loops
		// (batching here would repeat the naive report scan per batch).
		stop := func() bool { return ctx.Err() != nil }
		pos, ok, err := st.QueryStop(stop, r, bstInterval(lo, hi), k, nil)
		if err != nil {
			return nil, ctx.Err()
		}
		if !ok {
			return nil, ErrEmptyRange
		}
		out := make([]float64, len(pos))
		for i, p := range pos {
			out[i] = s.inner.Value(p)
		}
		return out, nil
	}
	// O(log n + s) structures: draw in batches of PollEvery with a ctx
	// check between batches.
	out := make([]float64, 0, k)
	var scratch [PollEvery]int
	for len(out) < k {
		batch := k - len(out)
		if batch > PollEvery {
			batch = PollEvery
		}
		pos, ok := s.inner.Query(r, bstInterval(lo, hi), batch, scratch[:0])
		if !ok {
			return nil, ErrEmptyRange
		}
		for _, p := range pos {
			out = append(out, s.inner.Value(p))
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SampleWoRContext is SampleWoR honouring ctx: the sparse dedupe loop
// polls ctx every PollEvery attempts and the dense enumeration checks it
// before and after the O(|S∩q|) pass.
func (s *RangeSampler) SampleWoRContext(ctx context.Context, r *Rand, lo, hi float64, k int) ([]float64, error) {
	if err := ValidateRange(lo, hi); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cnt := s.Count(lo, hi)
	if k > cnt || cnt == 0 {
		return nil, ErrSampleTooLarge
	}
	if 2*k > cnt {
		// Dense regime, as in SampleWoR.
		n := s.inner.Len()
		a := sort.Search(n, func(i int) bool { return s.inner.Value(i) >= lo })
		idx, err := wor.UniformWoR(r, cnt, k)
		if err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out := make([]float64, k)
		for i, off := range idx {
			out[i] = s.inner.Value(a + off)
		}
		return out, nil
	}
	// Sparse regime: WR draws deduplicated by position, polling ctx.
	seen := make(map[int]struct{}, k)
	var scratch [16]int
	out := make([]float64, 0, k)
	for attempts := 0; len(out) < k; attempts++ {
		if attempts%PollEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		pos, ok := s.inner.Query(r, bstInterval(lo, hi), 1, scratch[:0])
		if !ok {
			return nil, ErrSampleTooLarge
		}
		if _, dup := seen[pos[0]]; dup {
			continue
		}
		seen[pos[0]] = struct{}{}
		out = append(out, s.inner.Value(pos[0]))
	}
	return out, nil
}
