package core

import (
	"context"
	"errors"
	"sort"

	"repro/internal/rangesample"
	"repro/internal/scratch"
	"repro/internal/wor"
)

// Context-aware entry points. Every long-running loop — naive report
// scans, batched draws, WoR dedupe loops, chunked (re)builds — polls the
// context cooperatively at least every PollEvery units of work, so a
// canceled or deadline-expired request returns ctx.Err() promptly
// instead of holding a goroutine until the query completes. These are
// the paths internal/service threads per-request deadlines through.

// PollEvery is the cancellation poll granularity of the context-aware
// sampling paths: the number of samples drawn (or dedupe attempts made)
// between ctx.Err checks.
const PollEvery = 256

// ErrEmptyRange is returned by the context-aware sampling paths when
// S ∩ [lo, hi] is empty (the plain paths report this as ok=false).
var ErrEmptyRange = errors.New("core: empty range")

// NewRangeSamplerContext is NewRangeSampler honouring ctx during the
// build: the chunked structure polls ctx inside its per-chunk loop, and
// every kind checks ctx before and after the O(n log n) work. Returns
// ctx.Err() when the build was abandoned.
func NewRangeSamplerContext(ctx context.Context, kind Kind, values, weights []float64) (*RangeSampler, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if kind == KindChunked {
		if err := validateSeries(values, weights); err != nil {
			return nil, err
		}
		w := weights
		if w == nil {
			w = make([]float64, len(values))
			for i := range w {
				w[i] = 1
			}
		}
		inner, err := rangesample.NewChunkedStop(values, w, func() bool { return ctx.Err() != nil })
		if err != nil {
			if errors.Is(err, rangesample.ErrCanceled) {
				return nil, ctx.Err()
			}
			return nil, err
		}
		return finishRangeSampler(kind, inner), nil
	}
	s, err := NewRangeSampler(kind, values, weights)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// SampleContext is Sample honouring ctx: draws are made in batches of at
// most PollEvery with a ctx check between batches, and the naive
// structure additionally polls ctx inside its O(|S_q|) report scan.
// Returns ErrEmptyRange when the range holds no elements and ctx.Err()
// on cancellation; the two never mix with a non-nil sample slice.
func (s *RangeSampler) SampleContext(ctx context.Context, r *Rand, lo, hi float64, k int) ([]float64, error) {
	if err := ValidateRange(lo, hi); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, nil
	}
	sc := scratch.Get()
	defer scratch.Put(sc)
	out, err := s.SampleContextInto(ctx, r, lo, hi, k, make([]float64, 0, k), sc)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SampleContextInto is SampleContext appending to dst with all
// temporaries drawn from the caller-owned arena — the variant the
// serving stack uses so a steady request load recycles one arena per
// worker instead of allocating per query. Randomness consumption matches
// SampleContext exactly. dst is returned unchanged on error.
func (s *RangeSampler) SampleContextInto(ctx context.Context, r *Rand, lo, hi float64, k int, dst []float64, sc *scratch.Arena) ([]float64, error) {
	if err := ValidateRange(lo, hi); err != nil {
		return dst, err
	}
	if err := ctx.Err(); err != nil {
		return dst, err
	}
	if k <= 0 {
		return dst, nil
	}
	if st, isStop := s.inner.(rangesample.StopSampler); isStop {
		// One call: the structure polls ctx inside its own long loops
		// (batching here would repeat the naive report scan per batch).
		stop := func() bool { return ctx.Err() != nil }
		pos, ok, err := s.queryStopScratch(st, stop, r, bstInterval(lo, hi), k, sc.Pos(k), sc)
		if err != nil {
			return dst, ctx.Err()
		}
		if !ok {
			return dst, ErrEmptyRange
		}
		for _, p := range pos {
			dst = append(dst, s.inner.Value(p))
		}
		return dst, nil
	}
	// O(log n + s) structures: draw in batches of PollEvery with a ctx
	// check between batches, reusing one arena-backed position buffer.
	base := len(dst)
	for len(dst)-base < k {
		batch := k - (len(dst) - base)
		if batch > PollEvery {
			batch = PollEvery
		}
		pos, ok := s.queryScratch(r, bstInterval(lo, hi), batch, sc.Pos(batch), sc)
		if !ok {
			return dst[:base], ErrEmptyRange
		}
		for _, p := range pos {
			dst = append(dst, s.inner.Value(p))
		}
		if err := ctx.Err(); err != nil {
			return dst[:base], err
		}
	}
	return dst, nil
}

// queryStopScratch routes a stop-aware position query through the
// structure's scratch-aware path when it has one.
func (s *RangeSampler) queryStopScratch(st rangesample.StopSampler, stop func() bool, r *Rand, q rangesample.Interval, k int, dst []int, sc *scratch.Arena) ([]int, bool, error) {
	if sst, ok := st.(rangesample.StopScratchSampler); ok {
		return sst.QueryStopScratch(stop, r, q, k, dst, sc)
	}
	return st.QueryStop(stop, r, q, k, dst)
}

// SampleWoRContext is SampleWoR honouring ctx: the sparse dedupe loop
// polls ctx every PollEvery attempts and the dense enumeration checks it
// before and after the O(|S∩q|) pass.
func (s *RangeSampler) SampleWoRContext(ctx context.Context, r *Rand, lo, hi float64, k int) ([]float64, error) {
	sc := scratch.Get()
	defer scratch.Put(sc)
	out, err := s.SampleWoRContextInto(ctx, r, lo, hi, k, make([]float64, 0, k), sc)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SampleWoRContextInto is SampleWoRContext appending to dst with all
// temporaries drawn from the caller-owned arena. Randomness consumption
// matches SampleWoRContext exactly. dst is returned unchanged on error.
func (s *RangeSampler) SampleWoRContextInto(ctx context.Context, r *Rand, lo, hi float64, k int, dst []float64, sc *scratch.Arena) ([]float64, error) {
	if err := ValidateRange(lo, hi); err != nil {
		return dst, err
	}
	if err := ctx.Err(); err != nil {
		return dst, err
	}
	cnt := s.Count(lo, hi)
	if k > cnt || cnt == 0 {
		return dst, ErrSampleTooLarge
	}
	if 2*k > cnt {
		// Dense regime, as in SampleWoR.
		n := s.inner.Len()
		a := sort.Search(n, func(i int) bool { return s.inner.Value(i) >= lo })
		idx, err := wor.UniformWoRBulkInto(r, cnt, k, sc.Pos(k), sc.Seen(k))
		if err != nil {
			return dst, err
		}
		if err := ctx.Err(); err != nil {
			return dst, err
		}
		for _, off := range idx {
			dst = append(dst, s.inner.Value(a+off))
		}
		return dst, nil
	}
	// Sparse regime: WR draws deduplicated by position, polling ctx.
	seen := sc.Seen(k)
	base := len(dst)
	for attempts := 0; len(dst)-base < k; attempts++ {
		if attempts%PollEvery == 0 {
			if err := ctx.Err(); err != nil {
				return dst[:base], err
			}
		}
		pos, ok := s.queryScratch(r, bstInterval(lo, hi), 1, sc.Pos(1), sc)
		if !ok {
			return dst[:base], ErrSampleTooLarge
		}
		if _, dup := seen[pos[0]]; dup {
			continue
		}
		seen[pos[0]] = struct{}{}
		dst = append(dst, s.inner.Value(pos[0]))
	}
	return dst, nil
}
