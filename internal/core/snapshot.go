package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Snapshot I/O: a RangeSampler is persisted as its (kind, values,
// weights) triple and rebuilt on load. The structures build in
// O(n log n), so rebuilding is the honest serialisation strategy — the
// alternative (dumping every alias table and tree node) would be an
// order of magnitude more format surface for a constant-factor saving.
// Crucially, none of the *sampling randomness* is part of the state:
// queries draw fresh randomness per call, so a reloaded sampler is
// statistically indistinguishable from the original.

// snapshotMagic identifies the format; bump the version byte on change.
var snapshotMagic = [8]byte{'i', 'q', 's', 's', 'n', 'a', 'p', 1}

// ErrBadSnapshot is returned by Load for malformed input.
var ErrBadSnapshot = errors.New("core: bad snapshot")

// Save writes the sampler's dataset snapshot to w.
func (s *RangeSampler) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return err
	}
	n := s.inner.Len()
	hdr := make([]byte, 12)
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(s.kind))
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(n))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	buf := make([]byte, 16)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(buf[0:8], math.Float64bits(s.inner.Value(i)))
		binary.LittleEndian.PutUint64(buf[8:16], math.Float64bits(s.inner.Weight(i)))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a snapshot written by Save and rebuilds the sampler.
func Load(r io.Reader) (*RangeSampler, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if magic != snapshotMagic {
		return nil, fmt.Errorf("%w: magic mismatch", ErrBadSnapshot)
	}
	hdr := make([]byte, 12)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	kind := Kind(binary.LittleEndian.Uint32(hdr[0:4]))
	n := binary.LittleEndian.Uint64(hdr[4:12])
	if n == 0 || n > 1<<40 {
		return nil, fmt.Errorf("%w: implausible element count %d", ErrBadSnapshot, n)
	}
	values := make([]float64, n)
	weights := make([]float64, n)
	buf := make([]byte, 16)
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("%w: truncated at element %d: %v", ErrBadSnapshot, i, err)
		}
		values[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[0:8]))
		weights[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8:16]))
	}
	s, err := NewRangeSampler(kind, values, weights)
	if err != nil {
		return nil, fmt.Errorf("%w: rebuild failed: %v", ErrBadSnapshot, err)
	}
	return s, nil
}
