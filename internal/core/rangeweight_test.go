package core

import (
	"context"
	"math"
	"testing"
)

func TestRangeWeight(t *testing.T) {
	values := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	weights := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	for _, kind := range []Kind{KindChunked, KindAliasAug, KindTreeWalk, KindNaive} {
		s, err := NewRangeSampler(kind, values, weights)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		cases := []struct {
			lo, hi float64
			want   float64
		}{
			{math.Inf(-1), math.Inf(1), 36},
			{1, 8, 36},
			{2, 4, 9},
			{4.5, 4.9, 0},
			{8, 8, 8},
			{9, 10, 0},
			{-5, 0, 0},
			{3, 2, 0}, // inverted range weighs 0
		}
		for _, c := range cases {
			if got := s.RangeWeight(c.lo, c.hi); math.Abs(got-c.want) > 1e-9 {
				t.Errorf("%v: RangeWeight(%v, %v) = %v, want %v", kind, c.lo, c.hi, got, c.want)
			}
		}
		if got := s.TotalWeight(); math.Abs(got-36) > 1e-9 {
			t.Errorf("%v: TotalWeight() = %v, want 36", kind, got)
		}
	}
}

// TestRangeWeightContextBuild checks the chunked context-aware
// construction path also carries the prefix sums.
func TestRangeWeightContextBuild(t *testing.T) {
	values := []float64{10, 20, 30}
	weights := []float64{1, 2, 4}
	s, err := NewRangeSamplerContext(context.Background(), KindChunked, values, weights)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.RangeWeight(15, 30); math.Abs(got-6) > 1e-9 {
		t.Errorf("RangeWeight(15, 30) = %v, want 6", got)
	}
}
