package core

import (
	"math"
	"sort"
	"testing"

	"repro/internal/rng"
)

func chi2Crit(dof int) float64 {
	z := 3.719
	d := float64(dof)
	x := 1 - 2/(9*d) + z*math.Sqrt(2/(9*d))
	return d * x * x * x
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindChunked: "chunked", KindAliasAug: "aliasaug",
		KindTreeWalk: "treewalk", KindNaive: "naive",
	} {
		if k.String() != want {
			t.Fatalf("%d.String() = %q", int(k), k.String())
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Fatal("unknown kind string")
	}
}

func TestNewRangeSamplerErrors(t *testing.T) {
	if _, err := NewRangeSampler(KindChunked, nil, nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := NewRangeSampler(Kind(99), []float64{1}, nil); err == nil {
		t.Fatal("bad kind accepted")
	}
}

func TestAllKindsSampleAndAgree(t *testing.T) {
	values := []float64{5, 1, 9, 3, 7, 2, 8, 4, 6, 0}
	weights := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, kind := range []Kind{KindChunked, KindAliasAug, KindTreeWalk, KindNaive} {
		s, err := NewRangeSampler(kind, values, weights)
		if err != nil {
			t.Fatal(err)
		}
		r := NewRand(1)
		out, ok := s.Sample(r, 2, 7, 10000)
		if !ok {
			t.Fatalf("%v: empty", kind)
		}
		for _, v := range out {
			if v < 2 || v > 7 {
				t.Fatalf("%v: sample %v outside", kind, v)
			}
		}
		if got := s.Count(2, 7); got != 6 {
			t.Fatalf("%v: Count = %d", kind, got)
		}
		if got := s.Count(20, 30); got != 0 {
			t.Fatalf("%v: Count empty = %d", kind, got)
		}
		if _, ok := s.Sample(r, 20, 30, 1); ok {
			t.Fatalf("%v: empty range ok", kind)
		}
	}
}

func TestUniformWeightsDefault(t *testing.T) {
	values := make([]float64, 50)
	for i := range values {
		values[i] = float64(i)
	}
	s, err := NewRangeSampler(KindChunked, values, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRand(2)
	const draws = 100000
	counts := make([]int, 50)
	out, ok := s.Sample(r, 0, 49, draws)
	if !ok {
		t.Fatal("empty")
	}
	for _, v := range out {
		counts[int(v)]++
	}
	expected := float64(draws) / 50
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > chi2Crit(49) {
		t.Fatalf("chi2 = %v", chi2)
	}
}

func TestSampleWoR(t *testing.T) {
	values := make([]float64, 30)
	for i := range values {
		values[i] = float64(i)
	}
	s, err := NewRangeSampler(KindChunked, values, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRand(3)
	// Sparse regime (k small).
	out, err := s.SampleWoR(r, 5, 24, 4)
	if err != nil {
		t.Fatal(err)
	}
	checkWoR(t, out, 5, 24, 4)
	// Dense regime (k a large fraction).
	out, err = s.SampleWoR(r, 5, 24, 18)
	if err != nil {
		t.Fatal(err)
	}
	checkWoR(t, out, 5, 24, 18)
	// Exact full range.
	out, err = s.SampleWoR(r, 5, 24, 20)
	if err != nil {
		t.Fatal(err)
	}
	checkWoR(t, out, 5, 24, 20)
	// Too large.
	if _, err := s.SampleWoR(r, 5, 24, 21); err != ErrSampleTooLarge {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.SampleWoR(r, 100, 200, 1); err != ErrSampleTooLarge {
		t.Fatalf("empty range err = %v", err)
	}
}

func checkWoR(t *testing.T, out []float64, lo, hi float64, k int) {
	t.Helper()
	if len(out) != k {
		t.Fatalf("len = %d, want %d", len(out), k)
	}
	seen := map[float64]bool{}
	for _, v := range out {
		if v < lo || v > hi {
			t.Fatalf("value %v outside", v)
		}
		if seen[v] {
			t.Fatalf("duplicate %v in WoR sample", v)
		}
		seen[v] = true
	}
}

func TestSampleWoRMarginals(t *testing.T) {
	values := make([]float64, 10)
	for i := range values {
		values[i] = float64(i)
	}
	s, err := NewRangeSampler(KindAliasAug, values, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRand(4)
	counts := make([]int, 10)
	const trials = 30000
	for i := 0; i < trials; i++ {
		out, err := s.SampleWoR(r, 0, 9, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range out {
			counts[int(v)]++
		}
	}
	expected := float64(trials) * 3 / 10
	for i, c := range counts {
		if math.Abs(float64(c)-expected) > 6*math.Sqrt(expected) {
			t.Fatalf("element %d marginal %d, expected ~%v", i, c, expected)
		}
	}
}

func TestDynamicRangeSampler(t *testing.T) {
	d := NewDynamicRangeSampler(5)
	for i := 0; i < 20; i++ {
		if err := d.Insert(float64(i), 1); err != nil {
			t.Fatal(err)
		}
	}
	if d.Len() != 20 {
		t.Fatalf("Len = %d", d.Len())
	}
	r := NewRand(6)
	out, ok := d.Sample(r, 5, 14, 100)
	if !ok {
		t.Fatal("empty")
	}
	for _, v := range out {
		if v < 5 || v > 14 {
			t.Fatalf("sample %v outside", v)
		}
	}
	if got := d.Count(5, 14); got != 10 {
		t.Fatalf("Count = %d", got)
	}
	if err := d.Delete(7); err != nil {
		t.Fatal(err)
	}
	if got := d.Count(5, 14); got != 9 {
		t.Fatalf("Count after delete = %d", got)
	}
}

func TestPointSamplerKinds(t *testing.T) {
	r := rng.New(7)
	pts := make([][]float64, 100)
	for i := range pts {
		pts[i] = []float64{r.Float64(), r.Float64()}
	}
	min, max := []float64{0.2, 0.2}, []float64{0.8, 0.8}
	var want []int
	for i, p := range pts {
		if p[0] >= 0.2 && p[0] <= 0.8 && p[1] >= 0.2 && p[1] <= 0.8 {
			want = append(want, i)
		}
	}
	sort.Ints(want)
	inWant := map[int]bool{}
	for _, i := range want {
		inWant[i] = true
	}
	for _, kind := range []PointKind{PointKD, PointRangeTree, PointQuadtree} {
		ps, err := NewPointSampler(kind, pts, nil)
		if err != nil {
			t.Fatal(err)
		}
		rr := NewRand(8)
		out, ok := ps.Sample(rr, min, max, 2000)
		if !ok {
			t.Fatalf("kind %d: empty", kind)
		}
		for _, idx := range out {
			if !inWant[idx] {
				t.Fatalf("kind %d: sampled %d outside", kind, idx)
			}
		}
		if got := ps.RangeWeight(min, max); math.Abs(got-float64(len(want))) > 1e-9 {
			t.Fatalf("kind %d: RangeWeight = %v, want %d", kind, got, len(want))
		}
	}
	if _, err := NewPointSampler(PointQuadtree, [][]float64{{1, 2, 3}}, nil); err == nil {
		t.Fatal("3-D quadtree accepted")
	}
	if _, err := NewPointSampler(PointKind(9), pts, nil); err == nil {
		t.Fatal("bad point kind accepted")
	}
}

func TestSetUnionSampler(t *testing.T) {
	su, err := NewSetUnionSampler([][]int{{1, 2, 3}, {3, 4}}, 9)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRand(10)
	out, ok, err := su.Sample(r, []int{0, 1}, 5000)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	counts := map[int]int{}
	for _, e := range out {
		counts[e]++
	}
	if len(counts) != 4 {
		t.Fatalf("distinct = %d, want 4", len(counts))
	}
	est, err := su.UnionSizeEstimate([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if est != 4 {
		t.Fatalf("estimate = %v (small sets are exact)", est)
	}
}

func TestNewSetUnionSamplerError(t *testing.T) {
	if _, err := NewSetUnionSampler(nil, 1); err == nil {
		t.Fatal("empty collection accepted")
	}
}
