// Package core is the public face of the library: a unified API over the
// independent query sampling (IQS) structures that the rest of
// internal/... implements, mirroring the paper's catalogue:
//
//	RangeSampler        1-D weighted range sampling (§3–4: Naive,
//	                    TreeWalk, AliasAug/Lemma 2, Chunked/Theorem 3)
//	DynamicRangeSampler updatable variant (Hu et al. direction)
//	PointSampler        multi-dimensional weighted range sampling via
//	                    Theorem 5 covers (kd-tree, range tree, quadtree)
//	SetUnionSampler     Theorem 8 set union sampling
//	FairNN              r-fair nearest neighbour search (§2 Benefit 2)
//
// Guarantees common to every sampler: each query's output has exactly the
// advertised distribution (uniform or weight-proportional over the
// qualifying elements), and outputs of different queries are mutually
// independent (Equation 1 of the paper) — every query consumes fresh
// randomness from the *rng.Source the caller passes, and no query result
// is ever cached or reused.
//
// All constructors copy their inputs; samplers are safe for concurrent
// *reads* as long as each goroutine uses its own *rng.Source (the dynamic
// structures and SetUnionSampler mutate internal state on updates or
// rebuilds and need external locking in concurrent settings).
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/bst"
	"repro/internal/kdtree"
	"repro/internal/quadtree"
	"repro/internal/rangesample"
	"repro/internal/rangetree"
	"repro/internal/rng"
	"repro/internal/scratch"
	"repro/internal/setunion"
	"repro/internal/wor"
)

// Scratch is the reusable per-goroutine arena the *Into sampling entry
// points thread their temporaries through; see package scratch for the
// ownership rules. NewScratch and the pooled GetScratch/PutScratch pair
// keep callers of this package off the internal import path.
type Scratch = scratch.Arena

// NewScratch returns a fresh arena.
func NewScratch() *Scratch { return new(scratch.Arena) }

// GetScratch returns a warm arena from the process-wide pool.
func GetScratch() *Scratch { return scratch.Get() }

// PutScratch returns an arena to the pool; the caller must not retain
// any buffer borrowed from it.
func PutScratch(sc *Scratch) { scratch.Put(sc) }

// Rand is the deterministic random source all queries draw from.
type Rand = rng.Source

// NewRand returns a seeded random source.
func NewRand(seed uint64) *Rand { return rng.New(seed) }

// Kind selects the 1-D range-sampling structure.
type Kind int

const (
	// KindChunked is the Theorem 3 structure: O(n) space,
	// O(log n + s) query. The default.
	KindChunked Kind = iota
	// KindAliasAug is the Lemma 2 structure: O(n log n) space,
	// O(log n + s) query.
	KindAliasAug
	// KindTreeWalk is the §3.2 structure: O(n) space, O(s·log n) query.
	KindTreeWalk
	// KindNaive is the report-then-sample baseline: O(|S_q| + s) query.
	KindNaive
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindChunked:
		return "chunked"
	case KindAliasAug:
		return "aliasaug"
	case KindTreeWalk:
		return "treewalk"
	case KindNaive:
		return "naive"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ErrSampleTooLarge is returned by WoR queries requesting more samples
// than there are qualifying elements.
var ErrSampleTooLarge = errors.New("core: WoR sample size exceeds |S∩q|")

// ErrBadWeight is returned by constructors and updates for weights that
// are not strictly positive and finite — the inputs that would otherwise
// surface as panics or corrupt samplers deep inside the internal
// structure packages.
var ErrBadWeight = errors.New("core: weights must be positive and finite")

// ErrBadValue is returned by constructors and updates for NaN or
// infinite values/coordinates, which would silently corrupt the sorted
// orders the structures depend on.
var ErrBadValue = errors.New("core: values must be finite")

// ErrBadRange is returned by query paths for inverted (lo > hi) or NaN
// range endpoints. ±Inf endpoints are legal (they mean "unbounded").
var ErrBadRange = errors.New("core: bad query range")

// validateSeries rejects the inputs the internal packages would choke
// on, with core-level typed errors. A nil weights slice means uniform
// and is always valid.
func validateSeries(values, weights []float64) error {
	if weights != nil && len(weights) != len(values) {
		return fmt.Errorf("%w: %d values vs %d weights", ErrBadValue, len(values), len(weights))
	}
	for i, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: values[%d] = %v", ErrBadValue, i, v)
		}
	}
	for i, w := range weights {
		if !(w > 0) || math.IsInf(w, 1) {
			return fmt.Errorf("%w: weights[%d] = %v", ErrBadWeight, i, w)
		}
	}
	return nil
}

// ValidateRange rejects inverted and NaN query ranges with ErrBadRange.
func ValidateRange(lo, hi float64) error {
	if math.IsNaN(lo) || math.IsNaN(hi) || lo > hi {
		return fmt.Errorf("%w: [%v, %v]", ErrBadRange, lo, hi)
	}
	return nil
}

// RangeSampler answers weighted range-sampling IQS queries over a static
// set of real values.
type RangeSampler struct {
	kind  Kind
	inner rangesample.Sampler
	// scInner is inner's scratch-aware query interface, asserted once at
	// construction so the hot path pays no per-call type switch; nil when
	// the structure has no scratch-aware query (Into paths then fall back
	// to the allocating Query).
	scInner rangesample.ScratchSampler
	// prefix[i] is the total weight of the i smallest elements, built
	// once per construction so RangeWeight is O(log n) — the lookup the
	// sharded coordinator performs per shard per query to split sample
	// budgets.
	prefix []float64
}

// finishRangeSampler wraps a built structure, computing the weight
// prefix sums every construction path shares.
func finishRangeSampler(kind Kind, inner rangesample.Sampler) *RangeSampler {
	n := inner.Len()
	prefix := make([]float64, n+1)
	for i := 0; i < n; i++ {
		prefix[i+1] = prefix[i] + inner.Weight(i)
	}
	s := &RangeSampler{kind: kind, inner: inner, prefix: prefix}
	s.scInner, _ = inner.(rangesample.ScratchSampler)
	return s
}

// queryScratch routes a position query through the structure's
// scratch-aware path when it has one. Both paths consume randomness
// identically.
func (s *RangeSampler) queryScratch(r *Rand, q bst.Interval, k int, dst []int, sc *scratch.Arena) ([]int, bool) {
	if s.scInner != nil {
		return s.scInner.QueryScratch(r, q, k, dst, sc)
	}
	return s.inner.Query(r, q, k, dst)
}

// NewRangeSampler builds a sampler of the given kind over values and
// weights (weights[i] belongs to values[i]; pass nil weights for the
// uniform/WR regime).
func NewRangeSampler(kind Kind, values, weights []float64) (*RangeSampler, error) {
	if err := validateSeries(values, weights); err != nil {
		return nil, err
	}
	if weights == nil {
		weights = make([]float64, len(values))
		for i := range weights {
			weights[i] = 1
		}
	}
	var (
		inner rangesample.Sampler
		err   error
	)
	switch kind {
	case KindChunked:
		inner, err = rangesample.NewChunked(values, weights)
	case KindAliasAug:
		inner, err = rangesample.NewAliasAug(values, weights)
	case KindTreeWalk:
		inner, err = rangesample.NewTreeWalk(values, weights)
	case KindNaive:
		inner, err = rangesample.NewNaive(values, weights)
	default:
		return nil, fmt.Errorf("core: unknown kind %v", kind)
	}
	if err != nil {
		return nil, err
	}
	return finishRangeSampler(kind, inner), nil
}

// Kind returns the structure kind.
func (s *RangeSampler) Kind() Kind { return s.kind }

// Len returns the number of stored elements.
func (s *RangeSampler) Len() int { return s.inner.Len() }

// TotalWeight returns the total weight of all stored elements.
func (s *RangeSampler) TotalWeight() float64 { return s.prefix[len(s.prefix)-1] }

// RangeWeight returns the total weight of S ∩ [lo, hi] in O(log n) via
// the construction-time prefix sums; an invalid range weighs 0.
func (s *RangeSampler) RangeWeight(lo, hi float64) float64 {
	if ValidateRange(lo, hi) != nil {
		return 0
	}
	n := s.inner.Len()
	a := sort.Search(n, func(i int) bool { return s.inner.Value(i) >= lo })
	b := sort.Search(n, func(i int) bool { return s.inner.Value(i) > hi })
	if a >= b {
		return 0
	}
	return s.prefix[b] - s.prefix[a]
}

// Sample draws k independent weighted samples from S ∩ [lo, hi],
// returned as values. ok is false when the range is empty.
func (s *RangeSampler) Sample(r *Rand, lo, hi float64, k int) ([]float64, bool) {
	sc := scratch.Get()
	defer scratch.Put(sc)
	out, ok := s.SampleInto(r, lo, hi, k, nil, sc)
	if !ok {
		return nil, false
	}
	return out, true
}

// SampleInto is Sample appending the sampled values to dst, with every
// temporary — position buffer, on-the-fly alias builds, cover weights —
// drawn from the caller-owned arena, so a warm arena makes the query
// allocation-free (beyond dst growth). Randomness consumption matches
// Sample exactly: for the same *rng.Source state both return the same
// values. dst is returned unchanged when ok is false.
func (s *RangeSampler) SampleInto(r *Rand, lo, hi float64, k int, dst []float64, sc *scratch.Arena) ([]float64, bool) {
	if ValidateRange(lo, hi) != nil {
		return dst, false
	}
	pos, ok := s.queryScratch(r, bstInterval(lo, hi), k, sc.Pos(k), sc)
	if !ok {
		return dst, false
	}
	for _, p := range pos {
		dst = append(dst, s.inner.Value(p))
	}
	return dst, true
}

// Count returns |S ∩ [lo, hi]| in O(log n); an invalid range counts 0.
func (s *RangeSampler) Count(lo, hi float64) int {
	if ValidateRange(lo, hi) != nil {
		return 0
	}
	n := s.inner.Len()
	a := sort.Search(n, func(i int) bool { return s.inner.Value(i) >= lo })
	b := sort.Search(n, func(i int) bool { return s.inner.Value(i) > hi }) - 1
	if a > b {
		return 0
	}
	return b - a + 1
}

// SampleWoR draws a uniformly random size-k subset of S ∩ [lo, hi]
// (without replacement) for the uniform-weight regime, by the WR→WoR
// conversion of Section 2. Returns ErrSampleTooLarge when k exceeds the
// range count.
func (s *RangeSampler) SampleWoR(r *Rand, lo, hi float64, k int) ([]float64, error) {
	sc := scratch.Get()
	defer scratch.Put(sc)
	out, err := s.SampleWoRInto(r, lo, hi, k, make([]float64, 0, k), sc)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SampleWoRInto is SampleWoR appending to dst with all temporaries —
// Floyd's dedupe set, the WR-draw position buffer — drawn from the
// caller-owned arena. Randomness consumption matches SampleWoR exactly.
// dst is returned unchanged on error.
func (s *RangeSampler) SampleWoRInto(r *Rand, lo, hi float64, k int, dst []float64, sc *scratch.Arena) ([]float64, error) {
	if err := ValidateRange(lo, hi); err != nil {
		return dst, err
	}
	cnt := s.Count(lo, hi)
	if k > cnt || cnt == 0 {
		return dst, ErrSampleTooLarge
	}
	// Draw WR positions, dedupe until k distinct (O(k) expected when
	// k ≤ cnt/2; falls back to direct enumeration when k is a large
	// fraction of the range).
	if 2*k > cnt {
		// Dense regime: enumerate range positions and partial-shuffle.
		n := s.inner.Len()
		a := sort.Search(n, func(i int) bool { return s.inner.Value(i) >= lo })
		idx, err := wor.UniformWoRBulkInto(r, cnt, k, sc.Pos(k), sc.Seen(k))
		if err != nil {
			return dst, err
		}
		for _, off := range idx {
			dst = append(dst, s.inner.Value(a+off))
		}
		return dst, nil
	}
	// Sparse regime: WR draws deduplicated by position (coupon
	// collecting, O(k) expected draws for k ≤ cnt/2).
	seen := sc.Seen(k)
	base := len(dst)
	for len(dst)-base < k {
		pos, ok := s.queryScratch(r, bstInterval(lo, hi), 1, sc.Pos(1), sc)
		if !ok {
			return dst[:base], ErrSampleTooLarge
		}
		if _, dup := seen[pos[0]]; dup {
			continue
		}
		seen[pos[0]] = struct{}{}
		dst = append(dst, s.inner.Value(pos[0]))
	}
	return dst, nil
}

// SampleWeightedWoR draws a weighted sample without replacement of size
// k from S ∩ [lo, hi] (successive sampling: each draw is
// weight-proportional among the not-yet-chosen elements). For k below
// half the range count it deduplicates independent weighted WR draws —
// which realises exactly the successive-sampling distribution — and for
// dense k it falls back to Efraimidis–Spirakis keys over the enumerated
// range (O(|S∩q|)). Returns ErrSampleTooLarge when k exceeds the range
// count.
func (s *RangeSampler) SampleWeightedWoR(r *Rand, lo, hi float64, k int) ([]float64, error) {
	sc := scratch.Get()
	defer scratch.Put(sc)
	out, err := s.SampleWeightedWoRInto(r, lo, hi, k, make([]float64, 0, k), sc)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SampleWeightedWoRInto is SampleWeightedWoR appending to dst with the
// dedupe set, the Efraimidis–Spirakis key heap and the materialised
// in-range weight vector drawn from the caller-owned arena. The weight
// vector is materialised at most once per call — shared by the dense
// regime and the sparse regime's overflow fallback — instead of being
// rebuilt inside the retry loop. Randomness consumption matches
// SampleWeightedWoR exactly. dst is returned unchanged on error.
func (s *RangeSampler) SampleWeightedWoRInto(r *Rand, lo, hi float64, k int, dst []float64, sc *scratch.Arena) ([]float64, error) {
	if err := ValidateRange(lo, hi); err != nil {
		return dst, err
	}
	cnt := s.Count(lo, hi)
	if k > cnt || cnt == 0 {
		return dst, ErrSampleTooLarge
	}
	n := s.inner.Len()
	a := sort.Search(n, func(i int) bool { return s.inner.Value(i) >= lo })
	if 2*k > cnt {
		// Dense regime: enumerate the range's weights and run one-pass
		// weighted WoR.
		return s.denseWeightedWoRInto(r, a, cnt, k, dst, sc)
	}
	// Sparse regime: weighted WR draws deduplicated by position. A
	// weighted WR draw conditioned on being new is exactly the next
	// successive-sampling pick.
	seen := sc.Seen(k)
	base := len(dst)
	// Guard against pathological weight skew making dedupe slow: bound
	// total attempts generously, and on overflow discard the partial
	// draw and redo the whole sample via the (exact) dense path with
	// fresh randomness — a mixture of two exact procedures stays exact.
	maxAttempts := 64 * (k + 16)
	for attempts := 0; len(dst)-base < k; attempts++ {
		if attempts > maxAttempts {
			return s.denseWeightedWoRInto(r, a, cnt, k, dst[:base], sc)
		}
		pos, ok := s.queryScratch(r, bstInterval(lo, hi), 1, sc.Pos(1), sc)
		if !ok {
			return dst[:base], ErrSampleTooLarge
		}
		if _, dup := seen[pos[0]]; dup {
			continue
		}
		seen[pos[0]] = struct{}{}
		dst = append(dst, s.inner.Value(pos[0]))
	}
	return dst, nil
}

// denseWeightedWoRInto materialises the weights of the cnt in-range
// elements starting at sorted position a (once, into the arena) and runs
// one-pass weighted WoR over them, appending the sampled values to dst.
func (s *RangeSampler) denseWeightedWoRInto(r *Rand, a, cnt, k int, dst []float64, sc *scratch.Arena) ([]float64, error) {
	weights := sc.Weights(cnt)
	for i := 0; i < cnt; i++ {
		weights[i] = s.inner.Weight(a + i)
	}
	idx, err := wor.WeightedWoRBulkInto(r, weights, k, sc.Pos(k), sc.Floats(k))
	if err != nil {
		return dst, err
	}
	for _, off := range idx {
		dst = append(dst, s.inner.Value(a+off))
	}
	return dst, nil
}

// DynamicRangeSampler is the updatable 1-D weighted range sampler.
type DynamicRangeSampler struct {
	inner *rangesample.Dynamic
}

// NewDynamicRangeSampler returns an empty updatable sampler; seed drives
// only the internal tree shape.
func NewDynamicRangeSampler(seed uint64) *DynamicRangeSampler {
	return &DynamicRangeSampler{inner: rangesample.NewDynamic(seed)}
}

// Insert adds an element (duplicates allowed). O(log n) expected.
// Invalid inputs are rejected with ErrBadValue/ErrBadWeight before they
// can corrupt the tree.
func (d *DynamicRangeSampler) Insert(value, weight float64) error {
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return fmt.Errorf("%w: value = %v", ErrBadValue, value)
	}
	if !(weight > 0) || math.IsInf(weight, 1) {
		return fmt.Errorf("%w: weight = %v", ErrBadWeight, weight)
	}
	return d.inner.Insert(value, weight)
}

// Delete removes one element with the given value. O(log n) expected.
func (d *DynamicRangeSampler) Delete(value float64) error {
	return d.inner.Delete(value)
}

// Len returns the number of stored elements.
func (d *DynamicRangeSampler) Len() int { return d.inner.Len() }

// Sample draws k independent weighted samples from S ∩ [lo, hi].
func (d *DynamicRangeSampler) Sample(r *Rand, lo, hi float64, k int) ([]float64, bool) {
	return d.inner.Query(r, bst.Interval{Lo: lo, Hi: hi}, k, nil)
}

// Count returns |S ∩ [lo, hi]|.
func (d *DynamicRangeSampler) Count(lo, hi float64) int {
	return d.inner.Count(bst.Interval{Lo: lo, Hi: hi})
}

// PointKind selects the multi-dimensional structure.
type PointKind int

const (
	// PointKD is the kd-tree instantiation of Theorem 5: O(n) space,
	// O(n^{1−1/d} + s) query. The default.
	PointKD PointKind = iota
	// PointRangeTree is the range-tree instantiation: O(n log^{d−1} n)
	// space, O(log^d n + s·log n) query (walk mode).
	PointRangeTree
	// PointQuadtree is the 2-D quadtree comparator.
	PointQuadtree
)

// PointSampler answers multi-dimensional weighted range-sampling IQS
// queries (rectangles) over a static point set.
type PointSampler struct {
	kind PointKind
	dim  int
	kd   *kdtree.Sampler
	rt   *rangetree.Tree
	qt   *quadtree.Sampler
}

// NewPointSampler builds a sampler of the given kind over pts (all of
// one dimension) and weights (nil for uniform).
func NewPointSampler(kind PointKind, pts [][]float64, weights []float64) (*PointSampler, error) {
	if weights != nil && len(weights) != len(pts) {
		return nil, fmt.Errorf("%w: %d points vs %d weights", ErrBadValue, len(pts), len(weights))
	}
	for i, p := range pts {
		for _, c := range p {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return nil, fmt.Errorf("%w: pts[%d] has coordinate %v", ErrBadValue, i, c)
			}
		}
	}
	for i, w := range weights {
		if !(w > 0) || math.IsInf(w, 1) {
			return nil, fmt.Errorf("%w: weights[%d] = %v", ErrBadWeight, i, w)
		}
	}
	if weights == nil {
		weights = make([]float64, len(pts))
		for i := range weights {
			weights[i] = 1
		}
	}
	ps := &PointSampler{kind: kind}
	if len(pts) > 0 {
		ps.dim = len(pts[0])
	}
	var err error
	switch kind {
	case PointKD:
		ps.kd, err = kdtree.NewSampler(pts, weights)
	case PointRangeTree:
		ps.rt, err = rangetree.New(pts, weights, rangetree.WalkMode)
	case PointQuadtree:
		if len(pts) > 0 && len(pts[0]) != 2 {
			return nil, errors.New("core: quadtree requires 2-D points")
		}
		ps.qt, err = quadtree.NewSampler(pts, weights)
	default:
		return nil, fmt.Errorf("core: unknown point kind %d", int(kind))
	}
	if err != nil {
		return nil, err
	}
	return ps, nil
}

// Sample draws k independent weighted samples of the points inside the
// rectangle [min, max], returned as indices into the pts slice given at
// construction. ok is false when the rectangle is empty.
func (ps *PointSampler) Sample(r *Rand, min, max []float64, k int) ([]int, bool) {
	switch ps.kind {
	case PointKD:
		return ps.kd.Query(r, kdtree.Rect{Min: min, Max: max}, k, nil)
	case PointRangeTree:
		return ps.rt.Query(r, rangetree.Rect{Min: min, Max: max}, k, nil)
	default:
		return ps.qt.Query(r, quadtree.Rect{
			Min: [2]float64{min[0], min[1]},
			Max: [2]float64{max[0], max[1]},
		}, k, nil)
	}
}

// RangeWeight returns the total weight inside the rectangle.
func (ps *PointSampler) RangeWeight(min, max []float64) float64 {
	switch ps.kind {
	case PointKD:
		return ps.kd.RangeWeight(kdtree.Rect{Min: min, Max: max})
	case PointRangeTree:
		return ps.rt.RangeWeight(rangetree.Rect{Min: min, Max: max})
	default:
		return ps.qt.RangeWeight(quadtree.Rect{
			Min: [2]float64{min[0], min[1]},
			Max: [2]float64{max[0], max[1]},
		})
	}
}

// SetUnionSampler answers Theorem 8 queries: uniform samples from the
// union of a selected group of sets.
type SetUnionSampler struct {
	inner *setunion.Collection
}

// NewSetUnionSampler builds the structure over sets of element ids.
func NewSetUnionSampler(sets [][]int, seed uint64) (*SetUnionSampler, error) {
	c, err := setunion.New(sets, seed)
	if err != nil {
		return nil, err
	}
	return &SetUnionSampler{inner: c}, nil
}

// Sample draws k independent uniform samples from the union of the sets
// named by indices G.
func (su *SetUnionSampler) Sample(r *Rand, G []int, k int) ([]int, bool, error) {
	return su.inner.Query(r, G, k, nil)
}

// UnionSizeEstimate returns the sketch-based factor-1.5 estimate of the
// union size.
func (su *SetUnionSampler) UnionSizeEstimate(G []int) (float64, error) {
	return su.inner.UnionSizeEstimate(G)
}

// bstInterval is a tiny constructor shared by the sampling entry points.
func bstInterval(lo, hi float64) bst.Interval { return bst.Interval{Lo: lo, Hi: hi} }
