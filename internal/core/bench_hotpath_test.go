package core

import (
	"testing"
)

// Hot-path benchmarks for the bench-json pipeline (make bench-json).
// BenchmarkRangeSample measures the allocating entry points;
// BenchmarkRangeSampleInto (in into_test.go) measures the append-style
// zero-allocation variants. Comparing the two quantifies the per-query
// constant factor the paper's O(1)-per-sample claims are about.

func benchSampler(b *testing.B, weighted bool) *RangeSampler {
	b.Helper()
	n := 1 << 16
	values := make([]float64, n)
	var weights []float64
	if weighted {
		weights = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		values[i] = float64(i)
		if weighted {
			weights[i] = 1 + float64((i*7)%13)
		}
	}
	s, err := NewRangeSampler(KindChunked, values, weights)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkRangeSample(b *testing.B) {
	for _, bc := range []struct {
		name     string
		weighted bool
	}{{"wr", false}, {"weighted", true}} {
		b.Run(bc.name, func(b *testing.B) {
			s := benchSampler(b, bc.weighted)
			r := NewRand(1)
			lo, hi := 1000.0, 50000.0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, ok := s.Sample(r, lo, hi, 16)
				if !ok || len(out) != 16 {
					b.Fatal("bad sample")
				}
			}
		})
	}
}

func BenchmarkRangeSampleWoR(b *testing.B) {
	s := benchSampler(b, false)
	r := NewRand(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := s.SampleWoR(r, 1000, 50000, 16)
		if err != nil || len(out) != 16 {
			b.Fatal("bad sample")
		}
	}
}

func BenchmarkRangeSampleWeightedWoR(b *testing.B) {
	s := benchSampler(b, true)
	r := NewRand(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := s.SampleWeightedWoR(r, 1000, 50000, 16)
		if err != nil || len(out) != 16 {
			b.Fatal("bad sample")
		}
	}
}
