package core

import (
	"context"
	"testing"
)

// The golden-seed suite pins the exact sample sequences the allocating
// entry points produced before the zero-allocation refactor (captured
// from the pre-refactor binary on the same dataset). It guards the
// refactor's core invariant: swapping heap temporaries for arena-backed
// buffers must not move a single random draw, so identical seeds yield
// identical samples across releases. The *Into suite below then checks
// the append-style variants against the allocating ones draw for draw.

// goldenSampler builds the shared 512-element dataset: values 0..511,
// weights cycling 1..13.
func goldenSampler(t *testing.T, kind Kind, weighted bool) *RangeSampler {
	t.Helper()
	n := 512
	values := make([]float64, n)
	var weights []float64
	if weighted {
		weights = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		values[i] = float64(i)
		if weighted {
			weights[i] = 1 + float64((i*7)%13)
		}
	}
	s, err := NewRangeSampler(kind, values, weights)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// golden holds the pre-refactor sequences per kind: Sample(seed 12345,
// [100.5, 400.5], 8), SampleWoR(seed 999, [50, 460], 6),
// SampleWeightedWoR(seed 777, [50, 460], 6). The dense-regime WoR paths
// bypass the structure's query and are identical across kinds:
// SampleWoR(seed 4242, [200, 209], 8) and SampleWeightedWoR(seed 31337,
// [200, 209], 8).
var golden = map[Kind]struct{ sample, wor, wwor []float64 }{
	KindChunked: {
		sample: []float64{399, 272, 111, 221, 189, 164, 195, 257},
		wor:    []float64{389, 151, 111, 228, 66, 144},
		wwor:   []float64{384, 85, 165, 264, 232, 358},
	},
	KindAliasAug: {
		sample: []float64{379, 148, 356, 269, 319, 144, 135, 367},
		wor:    []float64{107, 79, 386, 114, 52, 410},
		wwor:   []float64{460, 381, 237, 146, 170, 79},
	},
	KindTreeWalk: {
		sample: []float64{336, 373, 128, 372, 167, 216, 212, 235},
		wor:    []float64{100, 402, 53, 401, 448, 295},
		wwor:   []float64{460, 342, 261, 62, 194, 373},
	},
	KindNaive: {
		sample: []float64{323, 139, 389, 115, 267, 103, 149, 190},
		wor:    []float64{85, 213, 323, 189, 64, 278},
		wwor:   []float64{437, 57, 409, 310, 452, 152},
	},
}

var goldenDenseWoR = []float64{201, 209, 205, 202, 200, 204, 203, 208}
var goldenDenseWWoR = []float64{208, 201, 206, 207, 204, 202, 209, 200}
var goldenUniform = []float64{280, 202, 260, 28, 88, 450, 60, 464, 120, 351}

func eqF64(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestGoldenSeedSequences(t *testing.T) {
	for kind, want := range golden {
		s := goldenSampler(t, kind, true)

		out, ok := s.Sample(NewRand(12345), 100.5, 400.5, 8)
		if !ok || !eqF64(out, want.sample) {
			t.Errorf("%v Sample: got %v want %v", kind, out, want.sample)
		}
		worOut, err := s.SampleWoR(NewRand(999), 50, 460, 6)
		if err != nil || !eqF64(worOut, want.wor) {
			t.Errorf("%v SampleWoR: got %v (err %v) want %v", kind, worOut, err, want.wor)
		}
		wwOut, err := s.SampleWeightedWoR(NewRand(777), 50, 460, 6)
		if err != nil || !eqF64(wwOut, want.wwor) {
			t.Errorf("%v SampleWeightedWoR: got %v (err %v) want %v", kind, wwOut, err, want.wwor)
		}
		dw, err := s.SampleWoR(NewRand(4242), 200, 209, 8)
		if err != nil || !eqF64(dw, goldenDenseWoR) {
			t.Errorf("%v dense SampleWoR: got %v (err %v) want %v", kind, dw, err, goldenDenseWoR)
		}
		dww, err := s.SampleWeightedWoR(NewRand(31337), 200, 209, 8)
		if err != nil || !eqF64(dww, goldenDenseWWoR) {
			t.Errorf("%v dense SampleWeightedWoR: got %v (err %v) want %v", kind, dww, err, goldenDenseWWoR)
		}
	}

	s := goldenSampler(t, KindChunked, false)
	out, ok := s.Sample(NewRand(2024), 0, 511, 10)
	if !ok || !eqF64(out, goldenUniform) {
		t.Errorf("uniform chunked Sample: got %v want %v", out, goldenUniform)
	}
}

// TestIntoMatchesAllocating drives every Into variant and its allocating
// wrapper from identically seeded sources — across many seeds, ranges
// and regimes, reusing one warm arena on the Into side — and requires
// draw-for-draw identical output.
func TestIntoMatchesAllocating(t *testing.T) {
	ctx := context.Background()
	for kind := range golden {
		for _, weighted := range []bool{true, false} {
			s := goldenSampler(t, kind, weighted)
			sc := NewScratch()
			var buf []float64
			for seed := uint64(1); seed <= 25; seed++ {
				lo := float64(seed % 13)
				hi := lo + float64(37+11*(seed%29))
				k := 1 + int(seed%17)

				want, wantOK := s.Sample(NewRand(seed), lo, hi, k)
				buf, ok := s.SampleInto(NewRand(seed), lo, hi, k, buf[:0], sc)
				if ok != wantOK || !eqF64(buf, want) {
					t.Fatalf("%v SampleInto(seed %d): got %v/%v want %v/%v", kind, seed, buf, ok, want, wantOK)
				}

				want2, wantErr := s.SampleWoR(NewRand(seed), lo, hi, k)
				buf, err := s.SampleWoRInto(NewRand(seed), lo, hi, k, buf[:0], sc)
				if (err == nil) != (wantErr == nil) || (err == nil && !eqF64(buf, want2)) {
					t.Fatalf("%v SampleWoRInto(seed %d): got %v/%v want %v/%v", kind, seed, buf, err, want2, wantErr)
				}

				want3, wantErr := s.SampleWeightedWoR(NewRand(seed), lo, hi, k)
				buf, err = s.SampleWeightedWoRInto(NewRand(seed), lo, hi, k, buf[:0], sc)
				if (err == nil) != (wantErr == nil) || (err == nil && !eqF64(buf, want3)) {
					t.Fatalf("%v SampleWeightedWoRInto(seed %d): got %v/%v want %v/%v", kind, seed, buf, err, want3, wantErr)
				}

				want4, wantErr := s.SampleContext(ctx, NewRand(seed), lo, hi, k)
				buf, err = s.SampleContextInto(ctx, NewRand(seed), lo, hi, k, buf[:0], sc)
				if (err == nil) != (wantErr == nil) || (err == nil && !eqF64(buf, want4)) {
					t.Fatalf("%v SampleContextInto(seed %d): got %v/%v want %v/%v", kind, seed, buf, err, want4, wantErr)
				}

				want5, wantErr := s.SampleWoRContext(ctx, NewRand(seed), lo, hi, k)
				buf, err = s.SampleWoRContextInto(ctx, NewRand(seed), lo, hi, k, buf[:0], sc)
				if (err == nil) != (wantErr == nil) || (err == nil && !eqF64(buf, want5)) {
					t.Fatalf("%v SampleWoRContextInto(seed %d): got %v/%v want %v/%v", kind, seed, buf, err, want5, wantErr)
				}
			}
		}
	}
}

// TestIntoAppendsPreservePrefix checks the append contract: an existing
// dst prefix survives the call and failures leave dst unchanged.
func TestIntoAppendsPreservePrefix(t *testing.T) {
	s := goldenSampler(t, KindChunked, true)
	sc := NewScratch()
	prefix := []float64{-1, -2}

	out, ok := s.SampleInto(NewRand(7), 100, 200, 4, prefix, sc)
	if !ok || len(out) != 6 || out[0] != -1 || out[1] != -2 {
		t.Fatalf("SampleInto clobbered prefix: %v", out)
	}
	// Empty range: dst must come back unchanged.
	out, ok = s.SampleInto(NewRand(7), 1000, 2000, 4, prefix, sc)
	if ok || len(out) != 2 {
		t.Fatalf("SampleInto on empty range: ok=%v out=%v", ok, out)
	}
	// WoR too large: unchanged, typed error.
	out2, err := s.SampleWoRInto(NewRand(7), 100, 101, 99, prefix, sc)
	if err != ErrSampleTooLarge || len(out2) != 2 {
		t.Fatalf("SampleWoRInto oversized: err=%v out=%v", err, out2)
	}
}
