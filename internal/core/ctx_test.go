package core

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"
)

func TestConstructorValidationTypedErrors(t *testing.T) {
	bad := []struct {
		name    string
		values  []float64
		weights []float64
		want    error
	}{
		{"nan value", []float64{1, math.NaN()}, nil, ErrBadValue},
		{"inf value", []float64{math.Inf(1), 2}, nil, ErrBadValue},
		{"nan weight", []float64{1, 2}, []float64{1, math.NaN()}, ErrBadWeight},
		{"negative weight", []float64{1, 2}, []float64{1, -1}, ErrBadWeight},
		{"zero weight", []float64{1, 2}, []float64{0, 1}, ErrBadWeight},
		{"inf weight", []float64{1, 2}, []float64{1, math.Inf(1)}, ErrBadWeight},
		{"length mismatch", []float64{1, 2}, []float64{1}, ErrBadValue},
	}
	for _, k := range []Kind{KindChunked, KindAliasAug, KindTreeWalk, KindNaive} {
		for _, c := range bad {
			if _, err := NewRangeSampler(k, c.values, c.weights); !errors.Is(err, c.want) {
				t.Errorf("%v/%s: err = %v, want %v", k, c.name, err, c.want)
			}
		}
	}
	if _, err := NewPointSampler(PointKD, [][]float64{{1, math.NaN()}}, nil); !errors.Is(err, ErrBadValue) {
		t.Errorf("point NaN coordinate: %v", err)
	}
	if _, err := NewPointSampler(PointKD, [][]float64{{1, 2}}, []float64{-3}); !errors.Is(err, ErrBadWeight) {
		t.Errorf("point negative weight: %v", err)
	}
	if _, err := NewApproxRangeSampler([]float64{math.Inf(-1)}, nil, 0.1); !errors.Is(err, ErrBadValue) {
		t.Errorf("approx inf value: %v", err)
	}
	d := NewDynamicRangeSampler(1)
	if err := d.Insert(math.NaN(), 1); !errors.Is(err, ErrBadValue) {
		t.Errorf("dynamic NaN value: %v", err)
	}
	if err := d.Insert(1, -2); !errors.Is(err, ErrBadWeight) {
		t.Errorf("dynamic negative weight: %v", err)
	}
}

func TestBadRangeTypedErrors(t *testing.T) {
	s, err := NewRangeSampler(KindChunked, []float64{1, 2, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRand(1)
	for _, q := range [][2]float64{{3, 1}, {math.NaN(), 2}, {1, math.NaN()}} {
		if _, err := s.SampleWoR(r, q[0], q[1], 1); !errors.Is(err, ErrBadRange) {
			t.Errorf("SampleWoR(%v): %v", q, err)
		}
		if _, err := s.SampleWeightedWoR(r, q[0], q[1], 1); !errors.Is(err, ErrBadRange) {
			t.Errorf("SampleWeightedWoR(%v): %v", q, err)
		}
		if _, err := s.SampleContext(context.Background(), r, q[0], q[1], 1); !errors.Is(err, ErrBadRange) {
			t.Errorf("SampleContext(%v): %v", q, err)
		}
		if got, ok := s.Sample(r, q[0], q[1], 1); ok || got != nil {
			t.Errorf("Sample(%v) = %v, %v; want nil, false", q, got, ok)
		}
		if c := s.Count(q[0], q[1]); c != 0 {
			t.Errorf("Count(%v) = %d", q, c)
		}
	}
	// Unbounded (±Inf) endpoints stay legal.
	if _, ok := s.Sample(r, math.Inf(-1), math.Inf(1), 2); !ok {
		t.Error("unbounded range rejected")
	}
}

func TestSampleContextCanceledPerKind(t *testing.T) {
	n := 100000
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}
	for _, k := range []Kind{KindChunked, KindAliasAug, KindTreeWalk, KindNaive} {
		s, err := NewRangeSampler(k, values, nil)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		start := time.Now()
		if _, err := s.SampleContext(ctx, NewRand(1), 0, float64(n), 1<<20); !errors.Is(err, context.Canceled) {
			t.Errorf("%v: err = %v, want context.Canceled", k, err)
		}
		if el := time.Since(start); el > 2*time.Second {
			t.Errorf("%v: canceled query took %v", k, el)
		}
	}
}

func TestSampleContextDeadlineAndWoR(t *testing.T) {
	values := make([]float64, 50000)
	for i := range values {
		values[i] = float64(i)
	}
	s, err := NewRangeSampler(KindNaive, values, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := s.SampleContext(ctx, NewRand(1), 0, 50000, 1000); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("SampleContext: %v, want DeadlineExceeded", err)
	}
	if _, err := s.SampleWoRContext(ctx, NewRand(1), 0, 50000, 100); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("SampleWoRContext: %v, want DeadlineExceeded", err)
	}
	// A live context behaves like the plain paths.
	got, err := s.SampleContext(context.Background(), NewRand(2), 100, 200, 50)
	if err != nil || len(got) != 50 {
		t.Fatalf("live SampleContext: %v, %d samples", err, len(got))
	}
	wor, err := s.SampleWoRContext(context.Background(), NewRand(3), 100, 200, 20)
	if err != nil || len(wor) != 20 {
		t.Fatalf("live SampleWoRContext: %v, %d samples", err, len(wor))
	}
	seen := map[float64]bool{}
	for _, v := range wor {
		if seen[v] {
			t.Fatalf("WoR returned duplicate %v", v)
		}
		seen[v] = true
	}
}

func TestNewRangeSamplerContextCancellation(t *testing.T) {
	values := make([]float64, 200000)
	for i := range values {
		values[i] = float64(i)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, k := range []Kind{KindChunked, KindAliasAug, KindTreeWalk, KindNaive} {
		if _, err := NewRangeSamplerContext(ctx, k, values, nil); !errors.Is(err, context.Canceled) {
			t.Errorf("%v: build err = %v, want context.Canceled", k, err)
		}
	}
	s, err := NewRangeSamplerContext(context.Background(), KindChunked, values, nil)
	if err != nil || s.Len() != len(values) {
		t.Fatalf("live build: %v", err)
	}
	// ErrEmptyRange for a live context over an empty range.
	if _, err := s.SampleContext(context.Background(), NewRand(1), -10, -5, 3); !errors.Is(err, ErrEmptyRange) {
		t.Errorf("empty range: %v, want ErrEmptyRange", err)
	}
}
