package core

import (
	"context"
	"testing"

	"repro/internal/race"
	"repro/internal/stats"
)

// Allocation-discipline assertions for the *Into hot paths: once the
// arena is warm, a WR range sample must not allocate at all, and the
// WoR paths must stay within a small constant (Go map clearing and the
// rare dedupe-map growth are allowed; fresh slices per call are not).
// Under -race the counts are skipped — detector instrumentation
// allocates — but the paths still run, keeping them race-checked.

// assertAllocs runs fn once to warm the arena, then requires at most
// max allocations per run.
func assertAllocs(t *testing.T, name string, max float64, fn func()) {
	t.Helper()
	fn() // warm the arena and any lazily built buffers
	if race.Enabled {
		t.Logf("%s: race build, allocation count not asserted", name)
		return
	}
	got := testing.AllocsPerRun(200, fn)
	if got > max {
		t.Errorf("%s: %v allocs/op, want ≤ %v", name, got, max)
	}
}

func TestSampleIntoZeroAllocs(t *testing.T) {
	ctx := context.Background()
	for _, kind := range []Kind{KindChunked, KindAliasAug, KindTreeWalk} {
		for _, weighted := range []bool{true, false} {
			s := goldenSampler(t, kind, weighted)
			sc := NewScratch()
			r := NewRand(42)
			buf := make([]float64, 0, 64)

			label := kind.String()
			if weighted {
				label += "/weighted"
			} else {
				label += "/uniform"
			}

			assertAllocs(t, label+" SampleInto", 0, func() {
				out, ok := s.SampleInto(r, 100.5, 400.5, 16, buf[:0], sc)
				if !ok || len(out) != 16 {
					t.Fatal("bad sample")
				}
			})
			assertAllocs(t, label+" SampleContextInto", 0, func() {
				out, err := s.SampleContextInto(ctx, r, 100.5, 400.5, 16, buf[:0], sc)
				if err != nil || len(out) != 16 {
					t.Fatal("bad sample")
				}
			})
			// WoR paths clear and occasionally grow the dedupe map; a
			// small constant covers that without re-permitting per-call
			// slices.
			assertAllocs(t, label+" SampleWoRInto", 4, func() {
				out, err := s.SampleWoRInto(r, 50, 460, 8, buf[:0], sc)
				if err != nil || len(out) != 8 {
					t.Fatal("bad sample")
				}
			})
			assertAllocs(t, label+" SampleWeightedWoRInto", 4, func() {
				out, err := s.SampleWeightedWoRInto(r, 50, 460, 8, buf[:0], sc)
				if err != nil || len(out) != 8 {
					t.Fatal("bad sample")
				}
			})
		}
	}
}

// TestNaiveIntoAllocs pins the baseline separately: its report pass is
// inherently O(|S_q|) but the buffer comes from the arena, so a warm
// arena still answers without fresh allocations.
func TestNaiveIntoAllocs(t *testing.T) {
	s := goldenSampler(t, KindNaive, true)
	sc := NewScratch()
	r := NewRand(42)
	buf := make([]float64, 0, 64)
	assertAllocs(t, "naive SampleInto", 0, func() {
		out, ok := s.SampleInto(r, 100.5, 400.5, 16, buf[:0], sc)
		if !ok || len(out) != 16 {
			t.Fatal("bad sample")
		}
	})
}

// TestIntoUniformity re-runs the distribution checks against the Into
// variants: WR sampling through a warm arena must stay uniform (for unit
// weights) and weight-proportional, query over query, at the same
// significance levels the allocating paths are held to.
func TestIntoUniformity(t *testing.T) {
	for _, kind := range []Kind{KindChunked, KindAliasAug, KindTreeWalk, KindNaive} {
		t.Run(kind.String(), func(t *testing.T) {
			n := 128
			values := make([]float64, n)
			for i := range values {
				values[i] = float64(i)
			}
			s, err := NewRangeSampler(kind, values, nil)
			if err != nil {
				t.Fatal(err)
			}
			sc := NewScratch()
			r := NewRand(1234)

			lo, hi := 10.0, 73.0 // 64 in-range values
			cells := 64
			observed := make([]int, cells)
			draws := 64 * cells
			buf := make([]float64, 0, 16)
			for d := 0; d < draws/16; d++ {
				out, ok := s.SampleInto(r, lo, hi, 16, buf[:0], sc)
				if !ok {
					t.Fatal("empty range")
				}
				for _, v := range out {
					observed[int(v)-10]++
				}
			}
			stat, err := stats.ChiSquareUniform(observed)
			if err != nil {
				t.Fatal(err)
			}
			crit := stats.ChiSquareCritical(cells-1, 1e-4)
			if stat > crit {
				t.Errorf("SampleInto uniformity: chi2 %.2f > crit %.2f", stat, crit)
			}
		})
	}
}

// TestIntoWeightProportional checks the weighted regime of the Into path
// against the expected weight-proportional cell counts.
func TestIntoWeightProportional(t *testing.T) {
	n := 64
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
		weights[i] = 1 + float64(i%4) // weights 1..4
	}
	s, err := NewRangeSampler(KindChunked, values, weights)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScratch()
	r := NewRand(99)

	lo, hi := 8.0, 39.0 // 32 in-range values
	cells := 32
	observed := make([]int, cells)
	total := 0.0
	for i := 8; i <= 39; i++ {
		total += weights[i]
	}
	draws := 128 * cells
	buf := make([]float64, 0, 16)
	for d := 0; d < draws/16; d++ {
		out, ok := s.SampleInto(r, lo, hi, 16, buf[:0], sc)
		if !ok {
			t.Fatal("empty range")
		}
		for _, v := range out {
			observed[int(v)-8]++
		}
	}
	expected := make([]float64, cells)
	for i := 0; i < cells; i++ {
		expected[i] = float64(draws) * weights[8+i] / total
	}
	stat, err := stats.ChiSquare(observed, expected)
	if err != nil {
		t.Fatal(err)
	}
	crit := stats.ChiSquareCritical(cells-1, 1e-4)
	if stat > crit {
		t.Errorf("SampleInto weighted: chi2 %.2f > crit %.2f", stat, crit)
	}
}

// BenchmarkRangeSampleInto is the post-refactor counterpart of
// BenchmarkRangeSample: the same query through the arena-backed path,
// which must report 0 B/op and 0 allocs/op.
func BenchmarkRangeSampleInto(b *testing.B) {
	for _, weighted := range []bool{false, true} {
		name := "wr"
		if weighted {
			name = "weighted"
		}
		b.Run(name, func(b *testing.B) {
			s := benchSampler(b, weighted)
			sc := NewScratch()
			r := NewRand(1)
			buf := make([]float64, 0, 16)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, ok := s.SampleInto(r, 1000, 50000, 16, buf[:0], sc)
				if !ok || len(out) != 16 {
					b.Fatal("bad sample")
				}
			}
		})
	}
}

// BenchmarkRangeSampleWoRInto measures the arena-backed WoR paths.
func BenchmarkRangeSampleWoRInto(b *testing.B) {
	s := benchSampler(b, false)
	sc := NewScratch()
	r := NewRand(1)
	buf := make([]float64, 0, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := s.SampleWoRInto(r, 1000, 50000, 16, buf[:0], sc)
		if err != nil || len(out) != 16 {
			b.Fatal("bad sample")
		}
	}
}

// BenchmarkRangeSampleWeightedWoRInto measures the arena-backed weighted
// WoR path (sparse regime with occasional dense fallback).
func BenchmarkRangeSampleWeightedWoRInto(b *testing.B) {
	s := benchSampler(b, true)
	sc := NewScratch()
	r := NewRand(1)
	buf := make([]float64, 0, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := s.SampleWeightedWoRInto(r, 1000, 50000, 16, buf[:0], sc)
		if err != nil || len(out) != 16 {
			b.Fatal("bad sample")
		}
	}
}
