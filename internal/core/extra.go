package core

import (
	"sync"

	"repro/internal/approx"
	"repro/internal/fairnn"
)

// ParallelSample draws k independent weighted samples from S ∩ [lo, hi]
// using `workers` goroutines. Static samplers are safe for concurrent
// reads; each worker derives its own independent random stream from r
// via Split, so the combined output has exactly the same distribution as
// a sequential Sample — the samples are iid either way, and concatenation
// order carries no information. ok is false when the range is empty.
//
// Useful when s is large (millions of samples feeding a training job):
// throughput scales with cores because the per-sample step of the
// Chunked/AliasAug structures is branch-light table lookups.
func (s *RangeSampler) ParallelSample(r *Rand, lo, hi float64, k, workers int) ([]float64, bool) {
	if workers < 1 {
		workers = 1
	}
	if workers > k {
		workers = k
	}
	if s.Count(lo, hi) == 0 {
		return nil, false
	}
	out := make([]float64, k)
	var wg sync.WaitGroup
	chunk := (k + workers - 1) / workers
	for w := 0; w < workers; w++ {
		start := w * chunk
		end := start + chunk
		if end > k {
			end = k
		}
		if start >= end {
			break
		}
		wr := r.Split()
		wg.Add(1)
		go func(start, end int, wr *Rand) {
			defer wg.Done()
			var scratch [256]int
			for start < end {
				batch := end - start
				if batch > len(scratch) {
					batch = len(scratch)
				}
				pos, ok := s.inner.Query(wr, bstInterval(lo, hi), batch, scratch[:0])
				if !ok {
					return
				}
				for _, p := range pos {
					out[start] = s.inner.Value(p)
					start++
				}
			}
		}(start, end, wr)
	}
	wg.Wait()
	return out, true
}

// FairNN answers r-fair nearest neighbour queries (§2 Benefit 2): a
// query returns independent uniform samples of the points within a fixed
// radius of the query point.
type FairNN struct {
	inner *fairnn.Index
}

// NewFairNN builds the index over pts with the given radius. numGrids
// trades recall against work (Θ(log n) recommended).
func NewFairNN(pts [][]float64, radius float64, numGrids int, seed uint64) (*FairNN, error) {
	idx, err := fairnn.New(pts, radius, numGrids, seed)
	if err != nil {
		return nil, err
	}
	return &FairNN{inner: idx}, nil
}

// Sample draws k independent uniform near neighbours of q (point
// indices). ok is false when nothing is within the radius.
func (f *FairNN) Sample(r *Rand, q []float64, k int) ([]int, bool, error) {
	return f.inner.Query(r, q, k, nil)
}

// Recall estimates the candidate recall for q (diagnostic).
func (f *FairNN) Recall(q []float64) float64 { return f.inner.Recall(q) }

// ApproxRangeSampler answers ε-approximate weighted range-sampling
// queries (§9 Direction 4): per-element probabilities may deviate from
// exact by a (1±ε)² factor, in exchange for a smaller and often faster
// structure. Cross-query independence remains exact.
type ApproxRangeSampler struct {
	inner *approx.Sampler
}

// NewApproxRangeSampler builds the sampler with approximation parameter
// eps ∈ (0, 1); nil weights mean uniform (which the structure answers
// exactly).
func NewApproxRangeSampler(values, weights []float64, eps float64) (*ApproxRangeSampler, error) {
	if err := validateSeries(values, weights); err != nil {
		return nil, err
	}
	if weights == nil {
		weights = make([]float64, len(values))
		for i := range weights {
			weights[i] = 1
		}
	}
	s, err := approx.New(values, weights, eps)
	if err != nil {
		return nil, err
	}
	return &ApproxRangeSampler{inner: s}, nil
}

// Sample draws k ε-approximate weighted samples from S ∩ [lo, hi].
func (a *ApproxRangeSampler) Sample(r *Rand, lo, hi float64, k int) ([]float64, bool) {
	var scratch [64]int
	pos, ok := a.inner.Query(r, lo, hi, k, scratch[:0])
	if !ok {
		return nil, false
	}
	out := make([]float64, len(pos))
	for i, p := range pos {
		out[i] = a.inner.Value(p)
	}
	return out, true
}

// Epsilon returns the approximation parameter.
func (a *ApproxRangeSampler) Epsilon() float64 { return a.inner.Epsilon() }
