package core

import (
	"sort"

	"repro/internal/rangesample"
	"repro/internal/scratch"
)

// Position-level access to a RangeSampler's sorted element array. The
// ingest layer (internal/ingest) addresses base elements by sorted
// position so tombstones and rank arithmetic stay O(log n); nothing
// here draws randomness or mutates the structure, so all of it is safe
// under the snapshot-sharing read paths.

// ValueAt returns the i-th smallest stored value. i must be in
// [0, Len()).
func (s *RangeSampler) ValueAt(i int) float64 { return s.inner.Value(i) }

// WeightAt returns the weight of the i-th smallest stored value. i must
// be in [0, Len()).
func (s *RangeSampler) WeightAt(i int) float64 { return s.inner.Weight(i) }

// PrefixWeight returns the total weight of the i smallest elements in
// O(1) via the construction-time prefix sums. i must be in [0, Len()].
func (s *RangeSampler) PrefixWeight(i int) float64 { return s.prefix[i] }

// PosRange returns the half-open sorted-position window [a, b) of the
// elements with value in [lo, hi]. An invalid or empty range returns
// a == b.
func (s *RangeSampler) PosRange(lo, hi float64) (a, b int) {
	if ValidateRange(lo, hi) != nil {
		return 0, 0
	}
	n := s.inner.Len()
	a = sort.Search(n, func(i int) bool { return s.inner.Value(i) >= lo })
	b = sort.Search(n, func(i int) bool { return s.inner.Value(i) > hi })
	if a > b {
		b = a
	}
	return a, b
}

// SamplePosInto draws k independent weighted samples from S ∩ [lo, hi]
// as sorted positions, appending to dst. Randomness consumption matches
// SampleInto exactly (it is the same position query); ok is false when
// the range is empty or invalid.
func (s *RangeSampler) SamplePosInto(r *Rand, lo, hi float64, k int, dst []int, sc *scratch.Arena) ([]int, bool) {
	if ValidateRange(lo, hi) != nil {
		return dst, false
	}
	return s.queryScratch(r, bstInterval(lo, hi), k, dst, sc)
}

// InvalidateCovers drops any cover-decomposition caches the underlying
// structure memoizes (see rangesample.CoverInvalidator). Callers invoke
// it when retiring a sampler from serving — snapshot swaps and ingest
// rebuilds — so a stale decomposition can never serve a mutated
// dataset.
func (s *RangeSampler) InvalidateCovers() {
	if ci, ok := s.inner.(rangesample.CoverInvalidator); ok {
		ci.InvalidateCovers()
	}
}
