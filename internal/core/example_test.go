package core_test

import (
	"fmt"

	"repro/internal/core"
)

// ExampleRangeSampler shows the 60-second path: build the Theorem 3
// structure and draw independent weighted samples from a range.
func ExampleRangeSampler() {
	values := []float64{10, 20, 30, 40, 50}
	weights := []float64{1, 1, 1, 1, 96} // the 50 dominates

	r := core.NewRand(7)
	s, err := core.NewRangeSampler(core.KindChunked, values, weights)
	if err != nil {
		panic(err)
	}
	out, ok := s.Sample(r, 15, 55, 5)
	fmt.Println("non-empty:", ok, "samples:", len(out))
	fmt.Println("in range:", out[0] >= 15 && out[0] <= 55)
	fmt.Println("count:", s.Count(15, 55))
	// Output:
	// non-empty: true samples: 5
	// in range: true
	// count: 4
}

// ExampleRangeSampler_sampleWoR demonstrates without-replacement
// sampling: the result is a uniformly random subset, all distinct.
func ExampleRangeSampler_sampleWoR() {
	values := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	r := core.NewRand(11)
	s, err := core.NewRangeSampler(core.KindAliasAug, values, nil)
	if err != nil {
		panic(err)
	}
	out, err := s.SampleWoR(r, 2, 7, 3)
	if err != nil {
		panic(err)
	}
	distinct := map[float64]bool{}
	for _, v := range out {
		distinct[v] = true
	}
	fmt.Println("size:", len(out), "all distinct:", len(distinct) == len(out))
	// Output:
	// size: 3 all distinct: true
}

// ExampleSetUnionSampler demonstrates Theorem 8: uniform samples from a
// union of overlapping sets, without overlap bias.
func ExampleSetUnionSampler() {
	sets := [][]int{
		{1, 2, 3},
		{3, 4}, // 3 overlaps
	}
	su, err := core.NewSetUnionSampler(sets, 5)
	if err != nil {
		panic(err)
	}
	est, err := su.UnionSizeEstimate([]int{0, 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("union size estimate:", est)
	r := core.NewRand(6)
	out, ok, err := su.Sample(r, []int{0, 1}, 4)
	fmt.Println("ok:", ok, "err:", err, "samples:", len(out))
	// Output:
	// union size estimate: 4
	// ok: true err: <nil> samples: 4
}
