package core

import (
	"math"
	"testing"
)

func TestSampleWeightedWoR(t *testing.T) {
	values := make([]float64, 30)
	weights := make([]float64, 30)
	for i := range values {
		values[i] = float64(i)
		weights[i] = float64(i%5) + 1
	}
	s, err := NewRangeSampler(KindChunked, values, weights)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRand(6)
	// Sparse regime.
	out, err := s.SampleWeightedWoR(r, 5, 24, 4)
	if err != nil {
		t.Fatal(err)
	}
	checkWoR(t, out, 5, 24, 4)
	// Dense regime.
	out, err = s.SampleWeightedWoR(r, 5, 24, 18)
	if err != nil {
		t.Fatal(err)
	}
	checkWoR(t, out, 5, 24, 18)
	// Errors.
	if _, err := s.SampleWeightedWoR(r, 5, 24, 21); err != ErrSampleTooLarge {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.SampleWeightedWoR(r, 100, 200, 1); err != ErrSampleTooLarge {
		t.Fatalf("err = %v", err)
	}
}

func TestSampleWeightedWoRFirstPickDistribution(t *testing.T) {
	// With k=1 the weighted WoR sample is a plain weighted sample.
	values := []float64{0, 1, 2, 3}
	weights := []float64{1, 2, 4, 8}
	s, err := NewRangeSampler(KindAliasAug, values, weights)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRand(7)
	const trials = 120000
	counts := make([]int, 4)
	for i := 0; i < trials; i++ {
		out, err := s.SampleWeightedWoR(r, 0, 3, 1)
		if err != nil {
			t.Fatal(err)
		}
		counts[int(out[0])]++
	}
	total := 15.0
	for i, c := range counts {
		expected := trials * weights[i] / total
		if math.Abs(float64(c)-expected) > 6*math.Sqrt(expected) {
			t.Fatalf("value %d count %d, expected ~%v", i, c, expected)
		}
	}
}

func TestSampleWeightedWoRHeavySkew(t *testing.T) {
	// Extreme skew exercises the dedupe path's fallback without
	// violating WoR semantics.
	values := []float64{0, 1, 2, 3, 4, 5, 6, 7}
	weights := []float64{1e9, 1, 1, 1, 1, 1, 1, 1}
	s, err := NewRangeSampler(KindChunked, values, weights)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRand(8)
	for trial := 0; trial < 50; trial++ {
		out, err := s.SampleWeightedWoR(r, 0, 7, 3)
		if err != nil {
			t.Fatal(err)
		}
		checkWoR(t, out, 0, 7, 3)
		found := false
		for _, v := range out {
			if v == 0 {
				found = true
			}
		}
		if !found {
			t.Fatal("dominant element missing from weighted WoR sample")
		}
	}
}
