package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestSnapshotRoundTrip(t *testing.T) {
	r := rng.New(1)
	values := make([]float64, 300)
	weights := make([]float64, 300)
	for i := range values {
		values[i] = r.Float64() * 100
		weights[i] = r.Float64() + 0.1
	}
	for _, kind := range []Kind{KindChunked, KindAliasAug, KindTreeWalk, KindNaive} {
		s, err := NewRangeSampler(kind, values, weights)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := Load(&buf)
		if err != nil {
			t.Fatalf("kind %v: %v", kind, err)
		}
		if loaded.Kind() != kind || loaded.Len() != 300 {
			t.Fatalf("kind %v: reloaded kind/len = %v/%d", kind, loaded.Kind(), loaded.Len())
		}
		if loaded.Count(10, 90) != s.Count(10, 90) {
			t.Fatalf("kind %v: counts differ after reload", kind)
		}
		// Same query distribution (two-sample chi2 over coarse buckets).
		rr := NewRand(2)
		a, _ := s.Sample(rr, 10, 90, 20000)
		b, _ := loaded.Sample(rr, 10, 90, 20000)
		var ca, cb [8]int
		for _, v := range a {
			ca[int(v/12.5)%8]++
		}
		for _, v := range b {
			cb[int(v/12.5)%8]++
		}
		chi2 := 0.0
		for i := range ca {
			x, y := float64(ca[i]), float64(cb[i])
			if x+y == 0 {
				continue
			}
			d := x - y
			chi2 += d * d / (x + y)
		}
		if chi2 > chi2Crit(7) {
			t.Fatalf("kind %v: reloaded distribution differs, chi2=%v", kind, chi2)
		}
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Load(strings.NewReader("not a snapshot at all")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Truncated: valid header, missing records.
	s, err := NewRangeSampler(KindChunked, []float64{1, 2, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-10]
	if _, err := Load(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	// Corrupt weights (NaN) must fail the rebuild.
	full := buf.Bytes()
	for i := len(full) - 8; i < len(full); i++ {
		full[i] = 0xFF
	}
	if _, err := Load(bytes.NewReader(full)); err == nil {
		t.Fatal("NaN-weight snapshot accepted")
	}
	_ = math.NaN()
}
