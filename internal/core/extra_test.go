package core

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestFairNNWrapper(t *testing.T) {
	r := rng.New(1)
	pts := make([][]float64, 200)
	for i := range pts {
		pts[i] = []float64{0.5 + r.NormFloat64()*0.01, 0.5 + r.NormFloat64()*0.01}
	}
	f, err := NewFairNN(pts, 0.05, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	rr := NewRand(3)
	q := []float64{0.5, 0.5}
	out, ok, err := f.Sample(rr, q, 20)
	if err != nil || !ok || len(out) != 20 {
		t.Fatalf("ok=%v err=%v len=%d", ok, err, len(out))
	}
	for _, idx := range out {
		dx, dy := pts[idx][0]-0.5, pts[idx][1]-0.5
		if math.Sqrt(dx*dx+dy*dy) > 0.05+1e-12 {
			t.Fatalf("sample %d too far", idx)
		}
	}
	if rec := f.Recall(q); rec < 0.5 {
		t.Fatalf("recall %v", rec)
	}
	// Far query.
	if _, ok, err := f.Sample(rr, []float64{9, 9}, 1); err != nil || ok {
		t.Fatalf("far query ok=%v err=%v", ok, err)
	}
	if _, err := NewFairNN(nil, 1, 1, 1); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestApproxRangeSamplerWrapper(t *testing.T) {
	values := make([]float64, 100)
	weights := make([]float64, 100)
	r := rng.New(4)
	for i := range values {
		values[i] = float64(i)
		weights[i] = r.Float64()*9 + 0.5
	}
	a, err := NewApproxRangeSampler(values, weights, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Epsilon() != 0.1 {
		t.Fatalf("eps = %v", a.Epsilon())
	}
	rr := NewRand(5)
	out, ok := a.Sample(rr, 20, 60, 50)
	if !ok || len(out) != 50 {
		t.Fatalf("ok=%v len=%d", ok, len(out))
	}
	for _, v := range out {
		if v < 20 || v > 60 {
			t.Fatalf("value %v outside", v)
		}
	}
	if _, ok := a.Sample(rr, 200, 300, 1); ok {
		t.Fatal("empty range returned ok")
	}
	// nil weights → uniform, exact.
	u, err := NewApproxRangeSampler(values, nil, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := u.Sample(rr, 0, 99, 10); !ok {
		t.Fatal("uniform sample failed")
	}
	if _, err := NewApproxRangeSampler(values, weights, 0); err == nil {
		t.Fatal("eps=0 accepted")
	}
}

func TestParallelSample(t *testing.T) {
	values := make([]float64, 5000)
	weights := make([]float64, 5000)
	r := rng.New(9)
	for i := range values {
		values[i] = float64(i)
		weights[i] = r.Float64() + 0.5
	}
	s, err := NewRangeSampler(KindChunked, values, weights)
	if err != nil {
		t.Fatal(err)
	}
	rr := NewRand(10)
	out, ok := s.ParallelSample(rr, 1000, 3999, 10000, 4)
	if !ok || len(out) != 10000 {
		t.Fatalf("ok=%v len=%d", ok, len(out))
	}
	for _, v := range out {
		if v < 1000 || v > 3999 {
			t.Fatalf("value %v outside", v)
		}
	}
	// Distribution must match the sequential path (two-sample chi2 over
	// 16 buckets).
	seq, _ := s.Sample(rr, 1000, 3999, 10000)
	bucket := func(v float64) int { return int((v - 1000) / 188) }
	var a, b [16]int
	for _, v := range out {
		a[min(bucket(v), 15)]++
	}
	for _, v := range seq {
		b[min(bucket(v), 15)]++
	}
	chi2 := 0.0
	for i := range a {
		x, y := float64(a[i]), float64(b[i])
		if x+y == 0 {
			continue
		}
		d := x - y
		chi2 += d * d / (x + y)
	}
	if chi2 > chi2Crit(15) {
		t.Fatalf("parallel vs sequential chi2 = %v", chi2)
	}
	// Degenerate knobs.
	if out, ok := s.ParallelSample(rr, 1000, 3999, 3, 16); !ok || len(out) != 3 {
		t.Fatalf("workers>k: ok=%v len=%d", ok, len(out))
	}
	if out, ok := s.ParallelSample(rr, 1000, 3999, 5, 0); !ok || len(out) != 5 {
		t.Fatalf("workers=0: ok=%v len=%d", ok, len(out))
	}
	if _, ok := s.ParallelSample(rr, 9000, 9999, 5, 2); ok {
		t.Fatal("empty range returned ok")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
