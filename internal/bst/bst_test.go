package bst

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func mustTree(t *testing.T, values, weights []float64) *Tree {
	t.Helper()
	tr, err := New(values, weights)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func uniformWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil, nil); err != ErrEmpty {
		t.Fatalf("err = %v", err)
	}
	if _, err := New([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := New([]float64{1}, []float64{0}); err != ErrBadWeight {
		t.Fatalf("err = %v", err)
	}
	if _, err := New([]float64{1}, []float64{math.NaN()}); err != ErrBadWeight {
		t.Fatalf("err = %v", err)
	}
}

func TestSingleLeaf(t *testing.T) {
	tr := mustTree(t, []float64{5}, []float64{2})
	if tr.Len() != 1 || tr.NumNodes() != 1 || tr.Height() != 0 {
		t.Fatalf("Len/NumNodes/Height = %d/%d/%d", tr.Len(), tr.NumNodes(), tr.Height())
	}
	if !tr.IsLeaf(tr.Root()) {
		t.Fatal("root of single-element tree is not a leaf")
	}
	if tr.Weight(tr.Root()) != 2 {
		t.Fatalf("root weight = %v", tr.Weight(tr.Root()))
	}
}

func TestSortsInput(t *testing.T) {
	tr := mustTree(t, []float64{3, 1, 2}, []float64{30, 10, 20})
	want := []float64{1, 2, 3}
	for i, v := range want {
		if tr.Value(i) != v {
			t.Fatalf("Value(%d) = %v, want %v", i, tr.Value(i), v)
		}
	}
	// Weights must follow their values through the sort.
	wantW := []float64{10, 20, 30}
	for i, w := range wantW {
		if tr.LeafWeight(i) != w {
			t.Fatalf("LeafWeight(%d) = %v, want %v", i, tr.LeafWeight(i), w)
		}
	}
}

func TestStructuralInvariants(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 300 {
			return true
		}
		values := make([]float64, len(raw))
		for i, v := range raw {
			values[i] = float64(v) + float64(i)/1000 // mostly distinct
		}
		tr, err := New(values, uniformWeights(len(values)))
		if err != nil {
			return false
		}
		n := tr.Len()
		if tr.NumNodes() != 2*n-1 {
			return false
		}
		// Height must be O(log n) — the even split gives ceil(log2 n).
		if n > 1 && tr.Height() > int(math.Ceil(math.Log2(float64(n))))+1 {
			return false
		}
		// Every internal node: key == smallest leaf key of right subtree,
		// weight == sum of child weights, span == union of child spans.
		ok := true
		var walk func(id NodeID)
		walk = func(id NodeID) {
			if tr.IsLeaf(id) {
				lo, hi := tr.Span(id)
				if lo != hi {
					ok = false
				}
				return
			}
			l, r := tr.Children(id)
			llo, lhi := tr.Span(l)
			rlo, rhi := tr.Span(r)
			lo, hi := tr.Span(id)
			if llo != lo || rhi != hi || lhi+1 != rlo {
				ok = false
			}
			if tr.Key(id) != tr.Value(rlo) {
				ok = false
			}
			if math.Abs(tr.Weight(id)-(tr.Weight(l)+tr.Weight(r))) > 1e-9 {
				ok = false
			}
			walk(l)
			walk(r)
		}
		walk(tr.Root())
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLeafRange(t *testing.T) {
	tr := mustTree(t, []float64{10, 20, 30, 40, 50}, uniformWeights(5))
	cases := []struct {
		q        Interval
		a, b     int
		nonEmpty bool
	}{
		{Interval{15, 45}, 1, 3, true},
		{Interval{10, 50}, 0, 4, true},
		{Interval{20, 20}, 1, 1, true},
		{Interval{-5, 5}, 0, 0, false},
		{Interval{55, 99}, 0, 0, false},
		{Interval{21, 29}, 0, 0, false},
		{Interval{50, 10}, 0, 0, false},
	}
	for _, c := range cases {
		a, b, ok := tr.LeafRange(c.q)
		if ok != c.nonEmpty {
			t.Fatalf("LeafRange(%v) ok = %v", c.q, ok)
		}
		if ok && (a != c.a || b != c.b) {
			t.Fatalf("LeafRange(%v) = [%d,%d], want [%d,%d]", c.q, a, b, c.a, c.b)
		}
	}
}

func TestCoverProperties(t *testing.T) {
	r := rng.New(91)
	for _, n := range []int{1, 2, 3, 7, 64, 100, 255} {
		values := make([]float64, n)
		weights := make([]float64, n)
		for i := range values {
			values[i] = float64(i)
			weights[i] = r.Float64() + 0.01
		}
		tr := mustTree(t, values, weights)
		for trial := 0; trial < 50; trial++ {
			a := r.Intn(n)
			b := a + r.Intn(n-a)
			cov := tr.Cover(a, b, nil)
			// Canonical nodes must be disjoint and exactly tile [a,b].
			var spans [][2]int
			for _, id := range cov {
				lo, hi := tr.Span(id)
				spans = append(spans, [2]int{lo, hi})
			}
			sort.Slice(spans, func(i, j int) bool { return spans[i][0] < spans[j][0] })
			cur := a
			for _, sp := range spans {
				if sp[0] != cur {
					t.Fatalf("n=%d [%d,%d]: cover gap/overlap at %d (spans %v)", n, a, b, cur, spans)
				}
				cur = sp[1] + 1
			}
			if cur != b+1 {
				t.Fatalf("n=%d [%d,%d]: cover ends at %d", n, a, b, cur-1)
			}
			// Cover size must be O(log n): at most 2*ceil(log2 n)+2.
			bound := 2
			if n > 1 {
				bound = 2*int(math.Ceil(math.Log2(float64(n)))) + 2
			}
			if len(cov) > bound {
				t.Fatalf("n=%d: cover size %d exceeds bound %d", n, len(cov), bound)
			}
		}
	}
}

func TestRangeWeightMatchesNaive(t *testing.T) {
	r := rng.New(17)
	const n = 200
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := range values {
		values[i] = float64(i) * 2
		weights[i] = r.Float64()*5 + 0.1
	}
	tr := mustTree(t, values, weights)
	for trial := 0; trial < 100; trial++ {
		a := r.Intn(n)
		b := a + r.Intn(n-a)
		want := 0.0
		for i := a; i <= b; i++ {
			want += weights[i]
		}
		if got := tr.RangeWeight(a, b); math.Abs(got-want) > 1e-6 {
			t.Fatalf("RangeWeight(%d,%d) = %v, want %v", a, b, got, want)
		}
	}
}

func TestSampleLeafDistribution(t *testing.T) {
	weights := []float64{1, 3, 2, 8, 1, 5}
	values := []float64{0, 1, 2, 3, 4, 5}
	tr := mustTree(t, values, weights)
	r := rng.New(61)
	const draws = 300000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[tr.SampleLeaf(r, tr.Root())]++
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	for i, c := range counts {
		expected := float64(draws) * weights[i] / total
		if math.Abs(float64(c)-expected) > 6*math.Sqrt(expected) {
			t.Fatalf("leaf %d sampled %d, expected ~%v", i, c, expected)
		}
	}
}

func TestSampleLeafFromSubtree(t *testing.T) {
	// Sampling from a canonical node must stay within its span.
	r := rng.New(62)
	tr := mustTree(t, []float64{0, 1, 2, 3, 4, 5, 6, 7}, uniformWeights(8))
	cov := tr.Cover(2, 5, nil)
	for _, id := range cov {
		lo, hi := tr.Span(id)
		for i := 0; i < 100; i++ {
			leaf := tr.SampleLeaf(r, id)
			if leaf < lo || leaf > hi {
				t.Fatalf("leaf %d outside span [%d,%d]", leaf, lo, hi)
			}
		}
	}
}

func TestCoverPanicsOnBadRange(t *testing.T) {
	tr := mustTree(t, []float64{1, 2, 3}, uniformWeights(3))
	for _, c := range [][2]int{{-1, 1}, {0, 3}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Cover(%v) did not panic", c)
				}
			}()
			tr.Cover(c[0], c[1], nil)
		}()
	}
}

func TestReport(t *testing.T) {
	tr := mustTree(t, []float64{5, 1, 3}, uniformWeights(3))
	got := tr.Report(0, 2, nil)
	if len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("Report = %v", got)
	}
}

func TestDuplicateValues(t *testing.T) {
	tr := mustTree(t, []float64{2, 2, 2, 1, 3}, uniformWeights(5))
	a, b, ok := tr.LeafRange(Interval{2, 2})
	if !ok || a != 1 || b != 3 {
		t.Fatalf("LeafRange(2,2) = %d,%d,%v", a, b, ok)
	}
}

func BenchmarkCover(b *testing.B) {
	r := rng.New(1)
	const n = 1 << 20
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	tr, err := New(values, w)
	if err != nil {
		b.Fatal(err)
	}
	var scratch [64]NodeID
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := r.Intn(n / 2)
		_ = tr.Cover(a, a+n/4, scratch[:0])
	}
}

func TestIntervalContains(t *testing.T) {
	q := Interval{Lo: 1, Hi: 3}
	if !q.Contains(1) || !q.Contains(3) || !q.Contains(2) {
		t.Fatal("closed interval endpoints rejected")
	}
	if q.Contains(0.9) || q.Contains(3.1) {
		t.Fatal("outside values accepted")
	}
}

func TestNewSorted(t *testing.T) {
	tr, err := NewSorted([]float64{1, 2, 2, 3}, []float64{10, 20, 21, 30})
	if err != nil {
		t.Fatal(err)
	}
	// The exact pairing must be preserved leaf-by-leaf.
	for i, want := range []float64{10, 20, 21, 30} {
		if tr.LeafWeight(i) != want {
			t.Fatalf("LeafWeight(%d) = %v, want %v", i, tr.LeafWeight(i), want)
		}
	}
	if _, err := NewSorted(nil, nil); err != ErrEmpty {
		t.Fatalf("empty err = %v", err)
	}
	if _, err := NewSorted([]float64{2, 1}, []float64{1, 1}); err == nil {
		t.Fatal("unsorted accepted")
	}
	if _, err := NewSorted([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := NewSorted([]float64{1}, []float64{0}); err != ErrBadWeight {
		t.Fatalf("bad weight err = %v", err)
	}
}

func TestNewUniformAndAccessors(t *testing.T) {
	tr, err := NewUniform([]float64{3, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Values(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("Values = %v", got)
	}
	if tr.Weight(tr.Root()) != 3 {
		t.Fatalf("uniform root weight = %v", tr.Weight(tr.Root()))
	}
	if got := tr.Count(tr.Root()); got != 3 {
		t.Fatalf("Count(root) = %d", got)
	}
}

func TestCoverInterval(t *testing.T) {
	tr := mustTree(t, []float64{1, 2, 3, 4, 5}, uniformWeights(5))
	cov := tr.CoverInterval(Interval{Lo: 2, Hi: 4}, nil)
	total := 0
	for _, id := range cov {
		total += tr.Count(id)
	}
	if total != 3 {
		t.Fatalf("CoverInterval covers %d leaves, want 3", total)
	}
	if got := tr.CoverInterval(Interval{Lo: 9, Hi: 10}, nil); len(got) != 0 {
		t.Fatalf("empty interval cover = %v", got)
	}
}
