// Package bst implements the static weight-augmented balanced binary
// search tree that Sections 3.2 and 4 of the paper build on, obeying the
// paper's conventions:
//
//   - the tree has height O(log n);
//   - it has n leaves, each storing one input value as its key, in sorted
//     order left to right;
//   - every internal node has exactly two children, and its key equals the
//     smallest leaf key in its right subtree;
//   - every node u carries w(u), the total weight of the leaves in its
//     subtree.
//
// Because the tree is built over the sorted input, each node spans a
// contiguous range of leaf positions; the package exposes that span,
// which is what the canonical-node decomposition (Figure 1), the
// Euler-tour reduction (Section 5) and the chunking structure (Section
// 4.2) all consume.
//
// The tree is static: the paper's dynamic structures live in
// internal/rangesample (Dynamic) instead.
package bst

import (
	"errors"
	"math"
	"sort"

	"repro/internal/rng"
)

// ErrEmpty is returned when constructing a tree over no elements.
var ErrEmpty = errors.New("bst: empty input")

// ErrBadWeight is returned for non-positive or non-finite weights.
var ErrBadWeight = errors.New("bst: weights must be positive and finite")

// ErrBadValue is returned for NaN or infinite values, which would break
// the sorted-order invariant silently.
var ErrBadValue = errors.New("bst: values must be finite")

// NodeID identifies a node within a Tree. The root is Tree.Root().
type NodeID int32

// None is the NodeID of a missing child.
const None NodeID = -1

// Interval is a closed query interval [Lo, Hi] over the real domain.
type Interval struct {
	Lo, Hi float64
}

// Contains reports whether v lies in the closed interval.
func (q Interval) Contains(v float64) bool { return q.Lo <= v && v <= q.Hi }

type node struct {
	key         float64 // leaf: stored value; internal: min leaf key of right subtree
	weight      float64 // total weight of leaves in the subtree
	left, right NodeID  // None for leaves
	lo, hi      int32   // span of leaf positions [lo, hi] covered
}

// Tree is the static weight-augmented BST.
type Tree struct {
	nodes  []node
	values []float64 // leaf values in sorted order
	weight []float64 // leaf weights aligned with values
	root   NodeID
}

// New builds a tree over the given values and weights (weights[i] belongs
// to values[i]). The input need not be sorted; it is copied and sorted
// internally. Duplicate values are allowed (range queries treat them as
// distinct elements with equal keys). Build time is O(n log n) including
// the sort; the tree itself is assembled in O(n).
func New(values, weights []float64) (*Tree, error) {
	n := len(values)
	if n == 0 {
		return nil, ErrEmpty
	}
	if len(weights) != n {
		return nil, errors.New("bst: values and weights length mismatch")
	}
	for i, w := range weights {
		if !(w > 0) || math.IsInf(w, 1) {
			return nil, ErrBadWeight
		}
		if math.IsNaN(values[i]) || math.IsInf(values[i], 0) {
			return nil, ErrBadValue
		}
	}
	t := &Tree{
		values: append([]float64(nil), values...),
		weight: append([]float64(nil), weights...),
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return values[idx[a]] < values[idx[b]] })
	for i, j := range idx {
		t.values[i] = values[j]
		t.weight[i] = weights[j]
	}
	// A tree over n leaves has exactly 2n-1 nodes.
	t.nodes = make([]node, 0, 2*n-1)
	t.root = t.build(0, int32(n-1))
	return t, nil
}

// NewSorted builds a tree over values already in non-decreasing order,
// keeping the caller's exact pairing of values[i] with weights[i] at leaf
// position i (useful when equal values carry distinct weights and the
// caller needs a guaranteed leaf layout). Returns an error if values are
// not sorted.
func NewSorted(values, weights []float64) (*Tree, error) {
	n := len(values)
	if n == 0 {
		return nil, ErrEmpty
	}
	if len(weights) != n {
		return nil, errors.New("bst: values and weights length mismatch")
	}
	for i, w := range weights {
		if !(w > 0) {
			return nil, ErrBadWeight
		}
		if i > 0 && values[i] < values[i-1] {
			return nil, errors.New("bst: values not sorted")
		}
	}
	t := &Tree{
		values: append([]float64(nil), values...),
		weight: append([]float64(nil), weights...),
	}
	t.nodes = make([]node, 0, 2*n-1)
	t.root = t.build(0, int32(n-1))
	return t, nil
}

// NewUniform builds a tree where every element has weight 1.
func NewUniform(values []float64) (*Tree, error) {
	w := make([]float64, len(values))
	for i := range w {
		w[i] = 1
	}
	return New(values, w)
}

// build assembles the subtree over leaf positions [lo, hi] and returns
// its NodeID.
func (t *Tree) build(lo, hi int32) NodeID {
	id := NodeID(len(t.nodes))
	if lo == hi {
		t.nodes = append(t.nodes, node{
			key:    t.values[lo],
			weight: t.weight[lo],
			left:   None,
			right:  None,
			lo:     lo,
			hi:     hi,
		})
		return id
	}
	t.nodes = append(t.nodes, node{lo: lo, hi: hi})
	mid := lo + (hi-lo)/2
	left := t.build(lo, mid)
	right := t.build(mid+1, hi)
	nd := &t.nodes[id]
	nd.left = left
	nd.right = right
	nd.key = t.values[mid+1] // smallest leaf key in the right subtree
	nd.weight = t.nodes[left].weight + t.nodes[right].weight
	return id
}

// Len returns the number of elements (leaves).
func (t *Tree) Len() int { return len(t.values) }

// NumNodes returns the total node count (2n−1).
func (t *Tree) NumNodes() int { return len(t.nodes) }

// Root returns the root node.
func (t *Tree) Root() NodeID { return t.root }

// Value returns the i-th smallest stored value.
func (t *Tree) Value(i int) float64 { return t.values[i] }

// LeafWeight returns the weight of the i-th smallest stored value.
func (t *Tree) LeafWeight(i int) float64 { return t.weight[i] }

// Values returns the sorted values; the slice aliases internal state.
func (t *Tree) Values() []float64 { return t.values }

// IsLeaf reports whether id is a leaf.
func (t *Tree) IsLeaf(id NodeID) bool { return t.nodes[id].left == None }

// Children returns the two children of an internal node.
func (t *Tree) Children(id NodeID) (left, right NodeID) {
	return t.nodes[id].left, t.nodes[id].right
}

// Key returns the node's key (split key for internal nodes, the stored
// value for leaves).
func (t *Tree) Key(id NodeID) float64 { return t.nodes[id].key }

// Weight returns w(id), the total weight of the node's subtree.
func (t *Tree) Weight(id NodeID) float64 { return t.nodes[id].weight }

// Span returns the contiguous leaf-position range [lo, hi] covered by the
// node's subtree (Proposition 1 of the paper).
func (t *Tree) Span(id NodeID) (lo, hi int) {
	return int(t.nodes[id].lo), int(t.nodes[id].hi)
}

// Count returns the number of leaves under the node.
func (t *Tree) Count(id NodeID) int {
	return int(t.nodes[id].hi-t.nodes[id].lo) + 1
}

// Height returns the height of the tree (0 for a single leaf).
func (t *Tree) Height() int {
	return t.heightOf(t.root)
}

func (t *Tree) heightOf(id NodeID) int {
	if t.IsLeaf(id) {
		return 0
	}
	l, r := t.Children(id)
	hl := t.heightOf(l)
	hr := t.heightOf(r)
	if hl > hr {
		return hl + 1
	}
	return hr + 1
}

// LeafRange maps a value interval q to the range of leaf positions [a, b]
// whose values lie in q. ok is false when no value falls in q. O(log n).
func (t *Tree) LeafRange(q Interval) (a, b int, ok bool) {
	a = sort.SearchFloat64s(t.values, q.Lo)
	b = sort.Search(len(t.values), func(i int) bool { return t.values[i] > q.Hi }) - 1
	if a > b {
		return 0, 0, false
	}
	return a, b, true
}

// Cover returns the canonical nodes for the leaf-position range [a, b]:
// O(log n) nodes with disjoint subtrees whose leaves are exactly
// positions a..b (the black nodes of Figure 1). Results are appended to
// dst and returned.
func (t *Tree) Cover(a, b int, dst []NodeID) []NodeID {
	if a < 0 || b >= len(t.values) || a > b {
		panic("bst: Cover range out of bounds")
	}
	return t.cover(t.root, int32(a), int32(b), dst)
}

func (t *Tree) cover(id NodeID, a, b int32, dst []NodeID) []NodeID {
	nd := &t.nodes[id]
	if a <= nd.lo && nd.hi <= b {
		return append(dst, id)
	}
	if nd.hi < a || b < nd.lo {
		return dst
	}
	dst = t.cover(nd.left, a, b, dst)
	dst = t.cover(nd.right, a, b, dst)
	return dst
}

// CoverInterval is Cover composed with LeafRange: the canonical nodes of
// a value interval. Returns nil when the interval is empty.
func (t *Tree) CoverInterval(q Interval, dst []NodeID) []NodeID {
	a, b, ok := t.LeafRange(q)
	if !ok {
		return dst
	}
	return t.Cover(a, b, dst)
}

// Report appends the leaf positions in [a, b] to dst — the conventional
// range-reporting query, O(log n + k). (Positions translate to values via
// Value.)
func (t *Tree) Report(a, b int, dst []int) []int {
	for i := a; i <= b; i++ {
		dst = append(dst, i)
	}
	return dst
}

// SampleLeaf draws one independent weighted leaf from the subtree of id
// using the top-down strategy of Section 3.2: at each internal node,
// descend into a child with probability proportional to the child's
// subtree weight. O(height) time. Returns the leaf position.
//
// For a binary tree the per-node "alias structure" degenerates to a
// single biased coin, so no preprocessing beyond the subtree weights is
// required.
func (t *Tree) SampleLeaf(r *rng.Source, id NodeID) int {
	for !t.IsLeaf(id) {
		nd := &t.nodes[id]
		if r.Float64()*nd.weight < t.nodes[nd.left].weight {
			id = nd.left
		} else {
			id = nd.right
		}
	}
	return int(t.nodes[id].lo)
}

// RangeWeight returns the total weight of leaves in positions [a, b],
// computed from the canonical cover in O(log n) time.
func (t *Tree) RangeWeight(a, b int) float64 {
	var scratch [64]NodeID
	cov := t.Cover(a, b, scratch[:0])
	sum := 0.0
	for _, id := range cov {
		sum += t.nodes[id].weight
	}
	return sum
}
