// Package dataset generates the synthetic workloads used by the
// experiments. The paper has no evaluation datasets of its own (it is a
// tutorial), so these generators realise the data regimes its analysis
// distinguishes: uniform and clustered value distributions, uniform and
// heavy-tailed (Zipf) weights, multi-dimensional point clouds, and query
// workloads with controlled selectivity.
package dataset

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// UniformValues returns n values uniform in [0, 1).
func UniformValues(r *rng.Source, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = r.Float64()
	}
	return v
}

// ClusteredValues returns n values drawn from k Gaussian clusters with
// the given standard deviation, centred uniformly in [0, 1).
func ClusteredValues(r *rng.Source, n, k int, sigma float64) []float64 {
	if k < 1 {
		k = 1
	}
	centers := make([]float64, k)
	for i := range centers {
		centers[i] = r.Float64()
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = centers[r.Intn(k)] + r.NormFloat64()*sigma
	}
	return v
}

// UniformWeights returns n unit weights (the WR regime).
func UniformWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// ZipfWeights returns n weights w_i ∝ 1/rank^alpha with a random rank
// assignment — the heavy-tailed regime where weighted sampling differs
// most from WR.
func ZipfWeights(r *rng.Source, n int, alpha float64) []float64 {
	w := make([]float64, n)
	perm := r.Perm(n)
	for i := range w {
		w[i] = 1 / math.Pow(float64(perm[i]+1), alpha)
	}
	return w
}

// RandomWeights returns n weights uniform in (lo, hi].
func RandomWeights(r *rng.Source, n int, lo, hi float64) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = lo + r.Float64()*(hi-lo)
		if w[i] <= 0 {
			w[i] = lo
		}
	}
	return w
}

// UniformPoints returns n points uniform in [0, 1)^d.
func UniformPoints(r *rng.Source, n, d int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, d)
		for j := range p {
			p[j] = r.Float64()
		}
		pts[i] = p
	}
	return pts
}

// ClusteredPoints returns n points from k Gaussian clusters in [0, 1)^d.
func ClusteredPoints(r *rng.Source, n, d, k int, sigma float64) [][]float64 {
	if k < 1 {
		k = 1
	}
	centers := UniformPoints(r, k, d)
	pts := make([][]float64, n)
	for i := range pts {
		c := centers[r.Intn(k)]
		p := make([]float64, d)
		for j := range p {
			p[j] = c[j] + r.NormFloat64()*sigma
		}
		pts[i] = p
	}
	return pts
}

// Interval is a query interval (duplicated locally to avoid an import
// cycle with the structure packages; convert at call sites).
type Interval struct {
	Lo, Hi float64
}

// IntervalQueries returns q query intervals over sorted values whose
// result sizes are ≈ selectivity·n, placed uniformly at random.
func IntervalQueries(r *rng.Source, sortedValues []float64, q int, selectivity float64) []Interval {
	n := len(sortedValues)
	span := int(selectivity * float64(n))
	if span < 1 {
		span = 1
	}
	if span > n {
		span = n
	}
	out := make([]Interval, q)
	for i := range out {
		a := r.Intn(n - span + 1)
		b := a + span - 1
		out[i] = Interval{Lo: sortedValues[a], Hi: sortedValues[b]}
	}
	return out
}

// RectQuery is an axis-parallel rectangle workload entry.
type RectQuery struct {
	Min, Max []float64
}

// RectQueries returns q random axis-parallel rectangles in [0,1]^d with
// side length `side` per dimension.
func RectQueries(r *rng.Source, d, q int, side float64) []RectQuery {
	out := make([]RectQuery, q)
	for i := range out {
		minC := make([]float64, d)
		maxC := make([]float64, d)
		for j := 0; j < d; j++ {
			lo := r.Float64() * (1 - side)
			minC[j], maxC[j] = lo, lo+side
		}
		out[i] = RectQuery{Min: minC, Max: maxC}
	}
	return out
}

// OverlappingSets returns m sets over a universe of u elements where each
// set holds `size` elements drawn from a window of the universe, with
// consecutive windows overlapping by the given fraction — the workload
// for set union sampling.
func OverlappingSets(r *rng.Source, m, u, size int, overlap float64) ([][]int, error) {
	if m < 1 || u < 1 || size < 1 {
		return nil, fmt.Errorf("dataset: bad set parameters m=%d u=%d size=%d", m, u, size)
	}
	if overlap < 0 || overlap >= 1 {
		return nil, fmt.Errorf("dataset: overlap %v outside [0,1)", overlap)
	}
	step := int(float64(size) * (1 - overlap))
	if step < 1 {
		step = 1
	}
	sets := make([][]int, m)
	for i := range sets {
		base := (i * step) % u
		s := make([]int, size)
		for j := range s {
			s[j] = (base + r.Intn(size*2)) % u
		}
		sets[i] = s
	}
	return sets, nil
}
