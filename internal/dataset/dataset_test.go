package dataset

import (
	"math"
	"sort"
	"testing"

	"repro/internal/rng"
)

func TestUniformValues(t *testing.T) {
	r := rng.New(1)
	v := UniformValues(r, 1000)
	if len(v) != 1000 {
		t.Fatalf("len = %d", len(v))
	}
	for _, x := range v {
		if x < 0 || x >= 1 {
			t.Fatalf("value %v out of range", x)
		}
	}
}

func TestClusteredValues(t *testing.T) {
	r := rng.New(2)
	v := ClusteredValues(r, 5000, 3, 0.01)
	if len(v) != 5000 {
		t.Fatalf("len = %d", len(v))
	}
	// Clusters should concentrate mass: the interquartile range is far
	// smaller than for uniform data... instead check simple sanity: the
	// variance is finite and values mostly within [-0.1, 1.1].
	inRange := 0
	for _, x := range v {
		if x > -0.1 && x < 1.1 {
			inRange++
		}
	}
	if inRange < 4900 {
		t.Fatalf("only %d of 5000 values near [0,1]", inRange)
	}
	// k<1 coerced.
	if got := ClusteredValues(r, 10, 0, 0.01); len(got) != 10 {
		t.Fatal("k=0 failed")
	}
}

func TestWeights(t *testing.T) {
	r := rng.New(3)
	for name, w := range map[string][]float64{
		"uniform": UniformWeights(100),
		"zipf":    ZipfWeights(r, 100, 1.2),
		"random":  RandomWeights(r, 100, 0.5, 2),
	} {
		if len(w) != 100 {
			t.Fatalf("%s: len %d", name, len(w))
		}
		for _, x := range w {
			if !(x > 0) {
				t.Fatalf("%s: non-positive weight %v", name, x)
			}
		}
	}
	// Zipf must be heavy-tailed: max/min = n^alpha.
	w := ZipfWeights(r, 1000, 1)
	mn, mx := math.Inf(1), math.Inf(-1)
	for _, x := range w {
		mn = math.Min(mn, x)
		mx = math.Max(mx, x)
	}
	if mx/mn < 500 {
		t.Fatalf("zipf spread %v too small", mx/mn)
	}
}

func TestPoints(t *testing.T) {
	r := rng.New(4)
	pts := UniformPoints(r, 200, 3)
	if len(pts) != 200 || len(pts[0]) != 3 {
		t.Fatalf("shape %dx%d", len(pts), len(pts[0]))
	}
	cpts := ClusteredPoints(r, 200, 2, 4, 0.02)
	if len(cpts) != 200 || len(cpts[0]) != 2 {
		t.Fatal("clustered shape wrong")
	}
}

func TestIntervalQueries(t *testing.T) {
	r := rng.New(5)
	values := UniformValues(r, 1000)
	sort.Float64s(values)
	qs := IntervalQueries(r, values, 50, 0.1)
	if len(qs) != 50 {
		t.Fatalf("len = %d", len(qs))
	}
	for _, q := range qs {
		if q.Hi < q.Lo {
			t.Fatalf("inverted query %+v", q)
		}
		// Selectivity ≈ 10%: count values inside.
		cnt := 0
		for _, v := range values {
			if v >= q.Lo && v <= q.Hi {
				cnt++
			}
		}
		if cnt < 50 || cnt > 200 {
			t.Fatalf("query selects %d of 1000, want ~100", cnt)
		}
	}
	// Extremes clamp.
	qs = IntervalQueries(r, values, 1, 0)
	if len(qs) != 1 {
		t.Fatal("zero selectivity failed")
	}
	qs = IntervalQueries(r, values, 1, 2)
	if qs[0].Lo != values[0] || qs[0].Hi != values[len(values)-1] {
		t.Fatal("overselectivity not clamped to full range")
	}
}

func TestRectQueries(t *testing.T) {
	r := rng.New(6)
	qs := RectQueries(r, 2, 20, 0.3)
	if len(qs) != 20 {
		t.Fatalf("len = %d", len(qs))
	}
	for _, q := range qs {
		for j := 0; j < 2; j++ {
			if q.Max[j]-q.Min[j] < 0.29 || q.Max[j] > 1.001 || q.Min[j] < 0 {
				t.Fatalf("bad rect %+v", q)
			}
		}
	}
}

func TestOverlappingSets(t *testing.T) {
	r := rng.New(7)
	if _, err := OverlappingSets(r, 0, 10, 5, 0.5); err == nil {
		t.Fatal("m=0 accepted")
	}
	if _, err := OverlappingSets(r, 5, 10, 5, 1.5); err == nil {
		t.Fatal("overlap>1 accepted")
	}
	sets, err := OverlappingSets(r, 10, 1000, 50, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 10 {
		t.Fatalf("len = %d", len(sets))
	}
	for _, s := range sets {
		if len(s) != 50 {
			t.Fatalf("set size %d", len(s))
		}
		for _, e := range s {
			if e < 0 || e >= 1000 {
				t.Fatalf("element %d outside universe", e)
			}
		}
	}
	// Consecutive sets should share elements at 0.5 overlap.
	shared := 0
	in0 := map[int]bool{}
	for _, e := range sets[0] {
		in0[e] = true
	}
	for _, e := range sets[1] {
		if in0[e] {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("no overlap between consecutive sets")
	}
}
