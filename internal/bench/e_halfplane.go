package bench

import (
	"fmt"
	"io"
	"math"

	"repro/internal/halfplane"
	"repro/internal/rng"
)

// RunE16 exercises the convex-layers halfplane sampler (the planar
// cousin of the §6 halfspace discussion): IQS cost vs report-then-sample
// across cut depths.
func RunE16(w io.Writer, seed uint64) {
	fmt.Fprintln(w, "E16 — halfplane sampling via convex layers (n = 2^16, s = 16)")
	t := newTable(w, "cut_depth", "|S_q|", "touched_layers", "iqs_ns", "report_ns", "speedup")
	r := rng.New(seed)
	const n = 1 << 16
	pts := make([][]float64, n)
	wts := make([]float64, n)
	for i := range pts {
		pts[i] = []float64{r.Float64()*2 - 1, r.Float64()*2 - 1}
		wts[i] = r.Float64() + 0.1
	}
	ix, err := halfplane.New(pts, wts)
	if err != nil {
		panic(err)
	}
	fmt.Fprintf(w, "convex layers: %d\n", ix.NumLayers())
	for _, c := range []float64{-1.2, -0.5, 0, 0.8} {
		q := halfplane.Halfplane{A: math.Sqrt2 / 2, B: math.Sqrt2 / 2, C: c}
		k := len(ix.Report(q, nil))
		if k == 0 {
			continue
		}
		tl := ix.TouchedLayers(q)
		var dst []int
		dIQS := medianTime(3, func() {
			for i := 0; i < 50; i++ {
				var e error
				dst, _, e = ix.Query(r, q, 16, dst[:0])
				if e != nil {
					panic(e)
				}
			}
		})
		dRep := medianTime(3, func() {
			for i := 0; i < 50; i++ {
				all := ix.Report(q, dst[:0])
				for j := 0; j < 16 && len(all) > 0; j++ {
					_ = all[r.Intn(len(all))]
				}
			}
		})
		iqsNs := nsPerOp(dIQS, 50)
		repNs := nsPerOp(dRep, 50)
		t.row(fmt.Sprintf("c=%.1f", c), k, tl, iqsNs, repNs, repNs/iqsNs)
	}
	t.flush()
	fmt.Fprintln(w, "expect: iqs cost tracks touched_layers, not |S_q|; speedup grows as the cut deepens")
}
