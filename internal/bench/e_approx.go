package bench

import (
	"fmt"
	"io"

	"repro/internal/approx"
	"repro/internal/rangesample"
	"repro/internal/rng"
)

// RunD4 regenerates the Direction 4 (approximate IQS) table: how ε trades
// per-element probability error against query speed and structure size,
// versus the exact Theorem 3 structure.
func RunD4(w io.Writer, seed uint64) {
	fmt.Fprintln(w, "D4 — approximate IQS (§9 Direction 4): ε vs cost (n = 2^20, weights spread 2^10)")
	t := newTable(w, "structure", "eps", "classes", "ns_per_query_s64", "worst_prob_ratio")
	const n = 1 << 20
	r := rng.New(seed)
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := range values {
		values[i] = r.Float64()
		weights[i] = 1 + r.Float64()*1023 // spread 2^10
	}
	sorted := sortedCopy(values)
	queries := queryWorkload(r, sorted, 200, 0.1)

	ck, err := rangesample.NewChunked(values, weights)
	if err != nil {
		panic(err)
	}
	var dst []int
	dExact := medianTime(3, func() {
		for _, q := range queries {
			dst, _ = ck.Query(r, q, 64, dst[:0])
		}
	})
	t.row("chunked (exact)", 0, "-", nsPerOp(dExact, len(queries)), 1.0)

	for _, eps := range []float64{0.01, 0.05, 0.2, 0.5} {
		ap, err := approx.New(values, weights, eps)
		if err != nil {
			panic(err)
		}
		d := medianTime(3, func() {
			for _, q := range queries {
				dst, _ = ap.Query(r, q.Lo, q.Hi, 64, dst[:0])
			}
		})
		worst := 1.0
		for _, q := range queries[:20] {
			if ratio := ap.MaxProbabilityRatio(q.Lo, q.Hi); ratio > worst {
				worst = ratio
			}
		}
		t.row("approx", eps, ap.NumClasses(), nsPerOp(d, len(queries)), worst)
	}
	t.flush()
	fmt.Fprintln(w, "expect: classes shrink with ε; worst_prob_ratio ≤ (1+ε)²; larger ε buys speed")
}
