package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"

	"repro/internal/bst"
	"repro/internal/rangesample"
	"repro/internal/rng"
)

// queryWorkload builds q random interval queries of the given selectivity
// over sorted values.
func queryWorkload(r *rng.Source, sorted []float64, q int, selectivity float64) []bst.Interval {
	n := len(sorted)
	span := int(selectivity * float64(n))
	if span < 1 {
		span = 1
	}
	if span > n {
		span = n
	}
	out := make([]bst.Interval, q)
	for i := range out {
		a := r.Intn(n - span + 1)
		out[i] = bst.Interval{Lo: sorted[a], Hi: sorted[a+span-1]}
	}
	return out
}

func sortedCopy(v []float64) []float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	return s
}

// runRangeGrid measures ns/query for one sampler over an (n fixed,
// s sweep) grid.
func runRangeGrid(t *table, label string, s rangesample.Sampler, queries []bst.Interval, r *rng.Source, n int, sSweep []int) {
	var dst []int
	for _, sCount := range sSweep {
		d := medianTime(3, func() {
			for _, q := range queries {
				dst, _ = s.Query(r, q, sCount, dst[:0])
			}
		})
		t.row(label, n, sCount, nsPerOp(d, len(queries)))
	}
}

// RunE2 regenerates the §3.2 tree-walk table: per-sample cost ~ log n.
func RunE2(w io.Writer, seed uint64) {
	fmt.Fprintln(w, "E2 — §3.2 TreeWalk: per-sample cost grows with log n")
	t := newTable(w, "structure", "n", "s", "ns_per_query")
	r := rng.New(seed)
	for _, n := range []int{1 << 14, 1 << 17, 1 << 20} {
		values, weights := seededValues(seed+uint64(n), n, true)
		tw, err := rangesample.NewTreeWalk(values, weights)
		if err != nil {
			panic(err)
		}
		queries := queryWorkload(r, sortedCopy(values), 200, 0.1)
		runRangeGrid(t, "treewalk", tw, queries, r, n, []int{1, 16, 256})
	}
	t.flush()
	fmt.Fprintln(w, "expect: ns_per_query ≈ (log n)·s for large s — doubling log n scales the s=256 rows")
}

// RunE3 regenerates the Lemma 2 table: after the O(log n) cover step,
// each extra sample costs O(1).
func RunE3(w io.Writer, seed uint64) {
	fmt.Fprintln(w, "E3 — Lemma 2 AliasAug: O(log n + s) query (flat per-sample cost)")
	t := newTable(w, "structure", "n", "s", "ns_per_query", "ns_per_sample")
	r := rng.New(seed)
	for _, n := range []int{1 << 14, 1 << 17, 1 << 20} {
		values, weights := seededValues(seed+uint64(n), n, true)
		aa, err := rangesample.NewAliasAug(values, weights)
		if err != nil {
			panic(err)
		}
		queries := queryWorkload(r, sortedCopy(values), 200, 0.1)
		var dst []int
		for _, sCount := range []int{1, 16, 256, 4096} {
			d := medianTime(3, func() {
				for _, q := range queries {
					dst, _ = aa.Query(r, q, sCount, dst[:0])
				}
			})
			perQ := nsPerOp(d, len(queries))
			t.row("aliasaug", n, sCount, perQ, perQ/float64(sCount))
		}
	}
	t.flush()
	fmt.Fprintln(w, "expect: ns_per_sample converges to a constant independent of n as s grows")
}

// RunE4 regenerates the Theorem 3 table: Chunked matches AliasAug's query
// time at a fraction of the space.
func RunE4(w io.Writer, seed uint64) {
	fmt.Fprintln(w, "E4 — Theorem 3 Chunked: query parity with Lemma 2 at O(n) space")
	t := newTable(w, "structure", "n", "build_heap_MB", "s", "ns_per_query")
	r := rng.New(seed)
	for _, n := range []int{1 << 17, 1 << 20} {
		values, weights := seededValues(seed+uint64(n), n, true)
		queries := queryWorkload(r, sortedCopy(values), 200, 0.1)
		for _, which := range []string{"aliasaug", "chunked"} {
			heapMB, s := buildMeasured(which, values, weights)
			var dst []int
			for _, sCount := range []int{16, 1024} {
				d := medianTime(3, func() {
					for _, q := range queries {
						dst, _ = s.Query(r, q, sCount, dst[:0])
					}
				})
				t.row(which, n, heapMB, sCount, nsPerOp(d, len(queries)))
			}
		}
	}
	t.flush()
	fmt.Fprintln(w, "expect: chunked ≈ aliasaug in ns_per_query with several-fold smaller build_heap_MB")
}

// buildMeasured builds the named structure measuring live-heap growth.
func buildMeasured(which string, values, weights []float64) (float64, rangesample.Sampler) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	var s rangesample.Sampler
	var err error
	switch which {
	case "aliasaug":
		s, err = rangesample.NewAliasAug(values, weights)
	case "chunked":
		s, err = rangesample.NewChunked(values, weights)
	case "treewalk":
		s, err = rangesample.NewTreeWalk(values, weights)
	case "naive":
		s, err = rangesample.NewNaive(values, weights)
	}
	if err != nil {
		panic(err)
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	heap := float64(after.HeapAlloc) - float64(before.HeapAlloc)
	if heap < 0 {
		heap = 0
	}
	return heap / (1 << 20), s
}

// RunE14 regenerates the §1 motivation table: the naive
// report-then-sample approach degrades linearly in |S_q| while the IQS
// structure stays flat.
func RunE14(w io.Writer, seed uint64) {
	fmt.Fprintln(w, "E14 — §1 motivation: IQS vs report-then-sample, s = 64")
	t := newTable(w, "selectivity", "|S_q|", "naive_ns", "chunked_ns", "speedup")
	r := rng.New(seed)
	const n = 1 << 20
	values, weights := seededValues(seed, n, true)
	nv, err := rangesample.NewNaive(values, weights)
	if err != nil {
		panic(err)
	}
	ck, err := rangesample.NewChunked(values, weights)
	if err != nil {
		panic(err)
	}
	sorted := sortedCopy(values)
	var dst []int
	for _, sel := range []float64{0.001, 0.01, 0.1, 0.5} {
		queries := queryWorkload(r, sorted, 30, sel)
		const s = 64
		dN := medianTime(3, func() {
			for _, q := range queries {
				dst, _ = nv.Query(r, q, s, dst[:0])
			}
		})
		dC := medianTime(3, func() {
			for _, q := range queries {
				dst, _ = ck.Query(r, q, s, dst[:0])
			}
		})
		nNs := nsPerOp(dN, len(queries))
		cNs := nsPerOp(dC, len(queries))
		t.row(fmt.Sprintf("%.1f%%", sel*100), int(sel*n), nNs, cNs, nNs/cNs)
	}
	t.flush()
	fmt.Fprintln(w, "expect: naive_ns grows ~linearly with |S_q|; chunked_ns flat; speedup explodes")
}

// RunA1 sweeps the chunk size of Theorem 3 around the Θ(log n) optimum.
func RunA1(w io.Writer, seed uint64) {
	fmt.Fprintln(w, "A1 — chunk-size ablation for Theorem 3 (n = 2^20, log2 n = 20)")
	t := newTable(w, "chunk_size", "num_chunks", "build_heap_MB", "ns_per_query_s16", "ns_per_query_s1024")
	r := rng.New(seed)
	const n = 1 << 20
	values, weights := seededValues(seed, n, true)
	sorted := sortedCopy(values)
	queries := queryWorkload(r, sorted, 200, 0.1)
	for _, cs := range []int{2, 8, 20, 64, 256, 2048} {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		ck, err := rangesample.NewChunkedSize(values, weights, cs)
		if err != nil {
			panic(err)
		}
		runtime.GC()
		runtime.ReadMemStats(&after)
		heap := (float64(after.HeapAlloc) - float64(before.HeapAlloc)) / (1 << 20)
		if heap < 0 {
			heap = 0
		}
		var dst []int
		res := make([]float64, 0, 2)
		for _, sCount := range []int{16, 1024} {
			d := medianTime(3, func() {
				for _, q := range queries {
					dst, _ = ck.Query(r, q, sCount, dst[:0])
				}
			})
			res = append(res, nsPerOp(d, len(queries)))
		}
		t.row(cs, ck.NumChunks(), heap, res[0], res[1])
	}
	t.flush()
	fmt.Fprintln(w, "expect: space shrinks then flattens as chunks grow; query cost degrades for chunk_size ≫ log n (partial-chunk rebuild dominates)")
}
