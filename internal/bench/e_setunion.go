package bench

import (
	"fmt"
	"io"

	"repro/internal/dataset"
	"repro/internal/rng"
	"repro/internal/setunion"
	"repro/internal/stats"
)

// RunE9 regenerates the Theorem 8 table: per-sample cost grows ~linearly
// in g (the number of sets in the query group) and the output is uniform
// over the union despite heavy overlap.
func RunE9(w io.Writer, seed uint64) {
	fmt.Fprintln(w, "E9 — Theorem 8 set union sampling (128 sets × 2000 elements, 50% overlap)")
	t := newTable(w, "g", "union_exact", "union_est", "ns_per_sample", "uniform_chi2_ok")
	r := rng.New(seed)
	sets, err := dataset.OverlappingSets(r, 128, 100_000, 2000, 0.5)
	if err != nil {
		panic(err)
	}
	c, err := setunion.New(sets, seed+1)
	if err != nil {
		panic(err)
	}
	for _, g := range []int{2, 8, 32, 128} {
		G := make([]int, g)
		for i := range G {
			G[i] = i
		}
		exact, err := c.UnionSizeExact(G)
		if err != nil {
			panic(err)
		}
		est, err := c.UnionSizeEstimate(G)
		if err != nil {
			panic(err)
		}
		const samples = 400
		var dst []int
		d := medianTime(3, func() {
			for i := 0; i < samples; i++ {
				var ok bool
				dst, ok, err = c.Query(r, G, 1, dst[:0])
				if err != nil || !ok {
					panic(fmt.Sprintf("ok=%v err=%v", ok, err))
				}
			}
		})
		// Uniformity check with enough draws on the smallest group.
		uniform := "-"
		if g == 2 {
			counts := map[int]int{}
			out, ok, err := c.Query(r, G, 60000, nil)
			if err != nil || !ok {
				panic(err)
			}
			for _, e := range out {
				counts[e]++
			}
			obs := make([]int, 0, len(counts))
			for _, cnt := range counts {
				obs = append(obs, cnt)
			}
			// Add zero cells for unseen union members.
			for len(obs) < exact {
				obs = append(obs, 0)
			}
			stat, err := stats.ChiSquareUniform(obs)
			if err != nil {
				panic(err)
			}
			if stat <= stats.ChiSquareCritical(exact-1, 1e-4) {
				uniform = "yes"
			} else {
				uniform = fmt.Sprintf("NO (%.0f)", stat)
			}
		}
		t.row(g, exact, est, nsPerOp(d, samples), uniform)
	}
	t.flush()
	fmt.Fprintln(w, "expect: ns_per_sample ~ linear in g; estimate within 1.5x of exact; uniform despite overlap")
}
