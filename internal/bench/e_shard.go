package bench

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/shard"
)

// RunS1 measures what sharding buys (and costs): range-sampling
// throughput and per-query latency of a single service instance vs a
// shard.Coordinator at K ∈ {2, 4, 8}, sequentially and under 8
// concurrent clients. Sequential sharded queries pay the fan-out and
// budget-split overhead; the concurrent rows show the per-shard
// services absorbing the parallelism.
func RunS1(w io.Writer, seed uint64) {
	const (
		n       = 1 << 16
		budget  = 64
		queries = 400
		clients = 8
	)
	fmt.Fprintf(w, "S1 — sharded coordinator vs single node (n = 2^16, s = %d, %d queries)\n", budget, queries)
	t := newTable(w, "engine", "seq_us/query", "seq_qps", "conc8_us/query", "conc8_qps")

	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}
	ctx := context.Background()

	type engine struct {
		name   string
		sample func(ctx context.Context, r *core.Rand, lo, hi float64, k int) ([]float64, error)
	}
	var engines []engine

	svc := service.New(service.Options{})
	if err := svc.Create(ctx, "single", core.KindChunked, values, nil); err != nil {
		panic(err)
	}
	engines = append(engines, engine{"single", func(ctx context.Context, r *core.Rand, lo, hi float64, k int) ([]float64, error) {
		return svc.Sample(ctx, r, "single", lo, hi, k)
	}})

	for _, k := range []int{2, 4, 8} {
		coord, err := shard.New(ctx, "bench", values, nil, shard.Options{Shards: k})
		if err != nil {
			panic(err)
		}
		engines = append(engines, engine{fmt.Sprintf("shard K=%d", k), coord.Sample})
	}

	for _, e := range engines {
		// Sequential: one client, median-of-3 timed passes.
		rSeq := core.NewRand(seed + 1)
		seq := medianTime(3, func() {
			for i := 0; i < queries; i++ {
				lo := float64(rSeq.Intn(n / 2))
				hi := lo + float64(n/4)
				if _, err := e.sample(ctx, rSeq, lo, hi, budget); err != nil {
					panic(err)
				}
			}
		})

		// Concurrent: 8 clients, each with its own rng stream, splitting
		// the same total query count.
		start := time.Now()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				r := core.NewRand(seed + uint64(c) + 100)
				for i := 0; i < queries/clients; i++ {
					lo := float64(r.Intn(n / 2))
					hi := lo + float64(n/4)
					if _, err := e.sample(ctx, r, lo, hi, budget); err != nil {
						panic(err)
					}
				}
			}(c)
		}
		wg.Wait()
		conc := time.Since(start)

		concQueries := (queries / clients) * clients
		t.row(e.name,
			nsPerOp(seq, queries)/1e3, float64(queries)/seq.Seconds(),
			nsPerOp(conc, concQueries)/1e3, float64(concQueries)/conc.Seconds())
	}
	t.flush()
}
