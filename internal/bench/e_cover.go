package bench

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/alias"
	"repro/internal/coverage"
	"repro/internal/rng"
)

// RunE8 regenerates the Theorem 6 table: the complement-range sampler's
// rejection loop accepts within a constant expected number of attempts,
// and Corollary 7's cover cache removes the per-query alias build.
func RunE8(w io.Writer, seed uint64) {
	fmt.Fprintln(w, "E8 — Theorem 6/Corollary 7: complement range sampling (n = 2^16)")
	t := newTable(w, "inside_frac", "cover_size", "ns_per_query_s16", "cached_ns_per_query_s16")
	r := rng.New(seed)
	const n = 1 << 16
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
		weights[i] = 1
	}
	sp, c, err := coverage.NewComplementSampler(values, weights)
	if err != nil {
		panic(err)
	}
	cached, err := coverage.NewCachedApproxSampler[coverage.Interval](c, weights)
	if err != nil {
		panic(err)
	}
	var dst []int
	for _, frac := range []float64{0.1, 0.4, 0.6, 0.9, 0.99} {
		k := int(frac * n)
		q := coverage.Interval{Lo: float64((n - k) / 2), Hi: float64((n-k)/2 + k - 1)}
		cov := c.ApproxCover(q, nil)
		const queries = 200
		d := medianTime(3, func() {
			for i := 0; i < queries; i++ {
				var e error
				dst, _, e = sp.Query(r, q, 16, dst[:0])
				if e != nil {
					panic(e)
				}
			}
		})
		dc := medianTime(3, func() {
			for i := 0; i < queries; i++ {
				var e error
				dst, _, e = cached.Query(r, q, 16, dst[:0])
				if e != nil {
					panic(e)
				}
			}
		})
		t.row(fmt.Sprintf("%.0f%%", frac*100), len(cov), nsPerOp(d, queries), nsPerOp(dc, queries))
	}
	size, hits, misses := cached.CacheStats()
	t.flush()
	fmt.Fprintf(w, "cover cache: %d distinct covers, %d hits, %d misses\n", size, hits, misses)
	fmt.Fprintln(w, "expect: cover_size ≤ 2 for all inside fractions; cost flat (rejection O(1) expected)")
}

// RunA2 compares the two ways to distribute s samples over a cover: the
// Theorem 1 alias structure vs binary search on the cover's CDF.
func RunA2(w io.Writer, seed uint64) {
	fmt.Fprintln(w, "A2 — cover-distribution ablation: alias vs CDF binary search")
	t := newTable(w, "cover_size", "s", "alias_ns", "cdf_ns", "ratio")
	r := rng.New(seed)
	for _, covSize := range []int{8, 32, 128, 1024} {
		weights := make([]float64, covSize)
		for i := range weights {
			weights[i] = r.Float64() + 0.1
		}
		prefix := make([]float64, covSize+1)
		for i, x := range weights {
			prefix[i+1] = prefix[i] + x
		}
		total := prefix[covSize]
		for _, s := range []int{16, 1024} {
			var sink int
			dA := medianTime(5, func() {
				a := alias.MustNew(weights) // built per query, as in Theorem 5
				for i := 0; i < s; i++ {
					sink = a.Sample(r)
				}
			})
			dC := medianTime(5, func() {
				for i := 0; i < s; i++ {
					x := r.Float64() * total
					sink = sort.SearchFloat64s(prefix[1:], x)
				}
			})
			_ = sink
			aNs := nsPerOp(dA, s)
			cNs := nsPerOp(dC, s)
			t.row(covSize, s, aNs, cNs, cNs/aNs)
		}
	}
	t.flush()
	fmt.Fprintln(w, "expect: alias wins once s ≳ cover_size (O(|C|+s) vs O(s·log|C|)); CDF wins for s ≪ |C|")
}
