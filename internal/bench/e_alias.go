package bench

import (
	"fmt"
	"io"

	"repro/internal/alias"
	"repro/internal/rng"
	"repro/internal/stats"
)

// RunE1 regenerates the Theorem 1 table: build time grows linearly with
// n, per-sample time stays flat (O(1)), and the empirical distribution
// passes a chi-square test against the weights.
func RunE1(w io.Writer, seed uint64) {
	fmt.Fprintln(w, "E1 — Theorem 1 (alias structure): O(n) build, O(1) sample, exact distribution")
	t := newTable(w, "n", "build_ms", "build_ns_per_elem", "ns_per_sample", "chi2_ok")
	for _, n := range []int{1_000, 10_000, 100_000, 1_000_000} {
		r := rng.New(seed)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = r.Float64()*9 + 0.5
		}
		var a *alias.Alias
		build := medianTime(3, func() { a = alias.MustNew(weights) })

		const sampleOps = 1 << 20
		var sink int
		sample := medianTime(3, func() {
			for i := 0; i < sampleOps; i++ {
				sink = a.Sample(r)
			}
		})
		_ = sink

		// Exactness on a small prefix view: chi-square on 16 buckets.
		chi2OK := "yes"
		{
			small := alias.MustNew(weights[:16])
			const draws = 200000
			counts := small.Counts(r, draws)
			total := 0.0
			for _, x := range weights[:16] {
				total += x
			}
			expected := make([]float64, 16)
			for i, x := range weights[:16] {
				expected[i] = draws * x / total
			}
			statVal, err := stats.ChiSquare(counts, expected)
			if err != nil || statVal > stats.ChiSquareCritical(15, 1e-4) {
				chi2OK = fmt.Sprintf("NO (chi2=%.1f)", statVal)
			}
		}
		t.row(n,
			float64(build.Microseconds())/1000,
			nsPerOp(build, n),
			nsPerOp(sample, sampleOps),
			chi2OK)
	}
	t.flush()
	fmt.Fprintln(w, "expect: build_ns_per_elem and ns_per_sample flat across n (Theorem 1)")
}

// RunA3 compares the Dynamic alias sampler against the strawman that
// rebuilds a static alias structure on every update.
func RunA3(w io.Writer, seed uint64) {
	fmt.Fprintln(w, "A3 — dynamization: level-bucketed Dynamic vs rebuild-per-update")
	t := newTable(w, "n", "dyn_update_ns", "dyn_sample_ns", "rebuild_update_ns", "speedup")
	for _, n := range []int{1_000, 10_000, 100_000} {
		r := rng.New(seed)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = r.Float64()*9 + 0.5
		}

		d := alias.NewDynamic()
		for i, x := range weights {
			if err := d.Insert(i, x); err != nil {
				panic(err)
			}
		}
		const ops = 2000
		dynUpd := medianTime(3, func() {
			for i := 0; i < ops; i++ {
				key := n + i
				if err := d.Insert(key, r.Float64()+0.5); err != nil {
					panic(err)
				}
				if err := d.Delete(key); err != nil {
					panic(err)
				}
			}
		})
		var sink int
		dynSmp := medianTime(3, func() {
			for i := 0; i < ops; i++ {
				sink = d.Sample(r)
			}
		})
		_ = sink

		// Strawman: full rebuild per weight change.
		rebuilds := 8
		reb := medianTime(1, func() {
			for i := 0; i < rebuilds; i++ {
				weights[i%n] = r.Float64() + 0.5
				_ = alias.MustNew(weights)
			}
		})
		dynNs := nsPerOp(dynUpd, ops*2)
		rebNs := nsPerOp(reb, rebuilds)
		t.row(n, dynNs, nsPerOp(dynSmp, ops), rebNs, rebNs/dynNs)
	}
	t.flush()
	fmt.Fprintln(w, "expect: dyn_update_ns flat in n; rebuild cost grows linearly (speedup ~ n)")
}
