package bench

import (
	"fmt"
	"io"
	"math"

	"repro/internal/permsample"
	"repro/internal/rangesample"
	"repro/internal/rng"
	"repro/internal/stats"
)

// RunE12 regenerates the §2 Benefit 1 table. Fix a range query and
// estimate, from s samples, the fraction of its elements lying in a
// sub-interval. Repeat the estimate m times. With IQS the number of
// erroneous estimates concentrates sharply around m·δ̂ (δ̂ = per-estimate
// failure rate); with the dependent permutation baseline every repeat
// returns the same estimate, so a run has either 0 or m failures — the
// "little can be said" regime the paper warns about.
func RunE12(w io.Writer, seed uint64) {
	fmt.Fprintln(w, "E12 — §2 Benefit 1: concentration of estimation errors (m = 400 estimates/run, 200 runs)")
	const (
		n     = 1 << 16
		eps   = 0.05
		m     = 400
		runs  = 200
		query = 0.5 // estimate P(value in left half of the range)
	)
	sSize := stats.SampleSizeForEstimate(eps, 0.1)
	fmt.Fprintf(w, "per-estimate: s = %d samples, ε = %.2f\n", sSize, eps)

	r := rng.New(seed)
	values := make([]float64, n)
	for i := range values {
		values[i] = r.Float64()
	}
	ck, err := rangesample.NewChunked(values, uniformOnes(n))
	if err != nil {
		panic(err)
	}
	qLo, qHi := 0.25, 0.75
	mid := (qLo + qHi) / 2
	// Ground truth.
	trueP := 0.0
	cnt := 0
	for _, v := range values {
		if v >= qLo && v <= qHi {
			cnt++
			if v < mid {
				trueP++
			}
		}
	}
	trueP /= float64(cnt)

	// IQS runs.
	iqsBad := make([]float64, runs)
	var dst []int
	for run := 0; run < runs; run++ {
		bad := 0
		for est := 0; est < m; est++ {
			dst, _ = ck.Query(r, rangesample.Interval{Lo: qLo, Hi: qHi}, sSize, dst[:0])
			hits := 0
			for _, pos := range dst {
				if ck.Value(pos) < mid {
					hits++
				}
			}
			if math.Abs(float64(hits)/float64(sSize)-trueP) > eps {
				bad++
			}
		}
		iqsBad[run] = float64(bad) / m
	}

	// Dependent runs: a fresh permutation per run, but the m estimates
	// inside a run all reuse the same (frozen) sample.
	depBad := make([]float64, runs)
	for run := 0; run < runs; run++ {
		ps, err := permsample.New(values, r.Uint64())
		if err != nil {
			panic(err)
		}
		out, ok := ps.Query(qLo, qHi, sSize, nil)
		if !ok {
			panic("empty")
		}
		hits := 0
		for _, pos := range out {
			if ps.Value(pos) < mid {
				hits++
			}
		}
		fail := math.Abs(float64(hits)/float64(len(out))-trueP) > eps
		if fail {
			depBad[run] = 1 // every one of the m estimates is wrong
		}
	}

	si := stats.Summarize(iqsBad)
	sd := stats.Summarize(depBad)
	t := newTable(w, "method", "mean_bad_rate", "stdev", "max_bad_rate", "runs_fully_wrong")
	fullyWrong := 0
	for _, v := range depBad {
		if v == 1 {
			fullyWrong++
		}
	}
	t.row("IQS (chunked)", si.Mean, math.Sqrt(si.Variance), si.Max, 0)
	t.row("dependent (permutation)", sd.Mean, math.Sqrt(sd.Variance), sd.Max, fullyWrong)
	t.flush()
	fmt.Fprintln(w, "expect: IQS max_bad_rate stays near its mean (concentration); dependent runs are all-or-nothing — some runs have a 100% error rate")
}

func uniformOnes(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// RunE13 regenerates the §2 Benefits 2–3 table: repeating one query and
// counting the distinct elements returned over time. IQS keeps surfacing
// fresh elements (diversity/fairness); the permutation baseline freezes
// after the first answer.
func RunE13(w io.Writer, seed uint64) {
	fmt.Fprintln(w, "E13 — §2 Benefits 2-3: distinct results over repeated identical queries (|S_q| = 100, s = 10)")
	const n = 1 << 12
	r := rng.New(seed)
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}
	ck, err := rangesample.NewChunked(values, uniformOnes(n))
	if err != nil {
		panic(err)
	}
	ps, err := permsample.New(values, seed+1)
	if err != nil {
		panic(err)
	}
	qLo, qHi := 1000.0, 1099.0
	const s = 10
	iqsSeen := map[int]bool{}
	depSeen := map[int]bool{}
	t := newTable(w, "queries", "distinct_IQS", "distinct_dependent", "coupon_expectation")
	var dst []int
	checkpoints := map[int]bool{1: true, 5: true, 10: true, 20: true, 50: true, 100: true}
	for qi := 1; qi <= 100; qi++ {
		dst, _ = ck.Query(r, rangesample.Interval{Lo: qLo, Hi: qHi}, s, dst[:0])
		for _, pos := range dst {
			iqsSeen[int(ck.Value(pos))] = true
		}
		out, _ := ps.Query(qLo, qHi, s, nil)
		for _, pos := range out {
			depSeen[pos] = true
		}
		if checkpoints[qi] {
			// Coupon-collector expectation for t·s uniform draws over 100.
			draws := float64(qi * s)
			expect := 100 * (1 - math.Pow(1-1.0/100, draws))
			t.row(qi, len(iqsSeen), len(depSeen), expect)
		}
	}
	t.flush()
	fmt.Fprintln(w, "expect: distinct_IQS tracks the coupon-collector curve to 100; distinct_dependent stays at s = 10 forever")
}
