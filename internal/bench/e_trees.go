package bench

import (
	"fmt"
	"io"
	"math"

	"repro/internal/kdtree"
	"repro/internal/quadtree"
	"repro/internal/rangetree"
	"repro/internal/rng"
	"repro/internal/treesample"
)

// balancedTree builds a balanced binary tree with the given number of
// leaves and pseudorandom weights.
func balancedTree(leaves int, seed uint64) *treesample.Tree {
	b := treesample.NewBuilder()
	root := b.AddRoot()
	queue := []treesample.NodeID{root}
	for len(queue) < leaves {
		nd := queue[0]
		queue = queue[1:]
		queue = append(queue, b.AddChild(nd), b.AddChild(nd))
	}
	r := rng.New(seed)
	for _, leaf := range queue {
		b.SetLeafWeight(leaf, r.Float64()+0.01)
	}
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}

// RunE5 regenerates the Lemma 4 table: the Euler sampler answers subtree
// queries independent of subtree depth, while the §3.2 walk pays the
// height.
func RunE5(w io.Writer, seed uint64) {
	fmt.Fprintln(w, "E5 — Lemma 4: Euler-tour sampling vs top-down walk (n = 2^18 leaves)")
	t := newTable(w, "sampler", "n_leaves", "s", "ns_per_query")
	const leaves = 1 << 18
	tree := balancedTree(leaves, seed)
	ws := treesample.NewWalkSampler(tree)
	es := treesample.NewEulerSampler(tree)
	r := rng.New(seed + 1)
	root := tree.Root()
	var dst []treesample.NodeID
	for _, sCount := range []int{1, 16, 256} {
		dW := medianTime(3, func() {
			for i := 0; i < 100; i++ {
				dst = ws.Query(r, root, sCount, dst[:0])
			}
		})
		dE := medianTime(3, func() {
			for i := 0; i < 100; i++ {
				dst = es.Query(r, root, sCount, dst[:0])
			}
		})
		t.row("walk", leaves, sCount, nsPerOp(dW, 100))
		t.row("euler", leaves, sCount, nsPerOp(dE, 100))
	}
	t.flush()
	fmt.Fprintln(w, "expect: euler beats walk by ~height (18x) per sample at large s")
}

// RunE6 regenerates the kd-tree table: query cost grows like sqrt(n) in
// 2-D and the quadtree comparator tracks it.
func RunE6(w io.Writer, seed uint64) {
	fmt.Fprintln(w, "E6 — Theorem 5 on kd-tree vs quadtree (2-D, s = 64, 40% squares)")
	t := newTable(w, "structure", "n", "sqrt_n", "cover", "ns_per_query")
	r := rng.New(seed)
	for _, n := range []int{1 << 12, 1 << 14, 1 << 16, 1 << 18} {
		pts := make([][]float64, n)
		wts := make([]float64, n)
		for i := range pts {
			pts[i] = []float64{r.Float64(), r.Float64()}
			wts[i] = r.Float64() + 0.1
		}
		kd, err := kdtree.NewSampler(pts, wts)
		if err != nil {
			panic(err)
		}
		qt, err := quadtree.NewSampler(pts, wts)
		if err != nil {
			panic(err)
		}
		const queries = 50
		rects := make([]kdtree.Rect, queries)
		qrects := make([]quadtree.Rect, queries)
		for i := range rects {
			lo0, lo1 := r.Float64()*0.6, r.Float64()*0.6
			rects[i] = kdtree.Rect{Min: []float64{lo0, lo1}, Max: []float64{lo0 + 0.4, lo1 + 0.4}}
			qrects[i] = quadtree.Rect{Min: [2]float64{lo0, lo1}, Max: [2]float64{lo0 + 0.4, lo1 + 0.4}}
		}
		coverSize := len(kd.Tree.Cover(rects[0], nil))
		var dst []int
		dKD := medianTime(3, func() {
			for i := range rects {
				dst, _ = kd.Query(r, rects[i], 64, dst[:0])
			}
		})
		dQT := medianTime(3, func() {
			for i := range qrects {
				dst, _ = qt.Query(r, qrects[i], 64, dst[:0])
			}
		})
		t.row("kdtree", n, int(math.Sqrt(float64(n))), coverSize, nsPerOp(dKD, queries))
		t.row("quadtree", n, int(math.Sqrt(float64(n))), "-", nsPerOp(dQT, queries))
	}
	t.flush()
	fmt.Fprintln(w, "expect: ns_per_query tracks sqrt_n growth (4x n → 2x time) once covers dominate")
}

// RunE7 regenerates the range tree table: polylog covers; alias mode
// removes the per-sample log factor; the fractional-cascading layered
// variant (footnote 5) shrinks the cover to O(log n).
func RunE7(w io.Writer, seed uint64) {
	fmt.Fprintln(w, "E7 — Theorem 5 on range tree (2-D): walk vs alias vs layered (footnote 5)")
	t := newTable(w, "mode", "n", "cover", "s", "ns_per_query")
	r := rng.New(seed)
	for _, n := range []int{1 << 12, 1 << 14} {
		pts := make([][]float64, n)
		wts := make([]float64, n)
		for i := range pts {
			pts[i] = []float64{r.Float64(), r.Float64()}
			wts[i] = r.Float64() + 0.1
		}
		const queries = 50
		rects := make([]rangetree.Rect, queries)
		for i := range rects {
			lo0, lo1 := r.Float64()*0.6, r.Float64()*0.6
			rects[i] = rangetree.Rect{Min: []float64{lo0, lo1}, Max: []float64{lo0 + 0.4, lo1 + 0.4}}
		}
		run := func(name string, cover int, query func(q rangetree.Rect, s int, dst []int) []int) {
			var dst []int
			for _, sCount := range []int{16, 1024} {
				d := medianTime(3, func() {
					for i := range rects {
						dst = query(rects[i], sCount, dst[:0])
					}
				})
				t.row(name, n, cover, sCount, nsPerOp(d, queries))
			}
		}
		for _, mode := range []rangetree.Mode{rangetree.WalkMode, rangetree.AliasMode} {
			rt, err := rangetree.New(pts, wts, mode)
			if err != nil {
				panic(err)
			}
			name := "walk"
			if mode == rangetree.AliasMode {
				name = "alias"
			}
			run(name, rt.CoverSize(rects[0]), func(q rangetree.Rect, s int, dst []int) []int {
				out, _ := rt.Query(r, q, s, dst)
				return out
			})
		}
		ly, err := rangetree.NewLayered(pts, wts, true)
		if err != nil {
			panic(err)
		}
		run("layered", ly.CoverSize(rects[0]), func(q rangetree.Rect, s int, dst []int) []int {
			out, _ := ly.Query(r, q, s, dst)
			return out
		})
	}
	t.flush()
	fmt.Fprintln(w, "expect: cover ~ log² n for walk/alias but ~log n for layered; alias/layered flat per sample; layered cheapest cover step")
}
