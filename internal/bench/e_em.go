package bench

import (
	"fmt"
	"io"

	"repro/internal/em"
	"repro/internal/emiqs"
	"repro/internal/rng"
)

// RunE10 regenerates the §8 set-sampling table: I/Os per query for the
// naive, sorted-batch and pool structures across sample sizes — the pool
// meets the Hu et al. lower-bound shape.
func RunE10(w io.Writer, seed uint64) {
	fmt.Fprintln(w, "E10 — §8 EM set sampling (n = 2^16, B = 256, M = 4096): I/Os per query")
	t := newTable(w, "s", "naive_IOs", "sorted_IOs", "pool_IOs_amortized")
	const n = 1 << 16
	const b, m = 256, 4096
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}
	r := rng.New(seed)

	for _, s := range []int{16, 256, 4096, 65536} {
		// Naive: one random I/O per sample.
		dNaive, err := em.NewDevice(b, m)
		if err != nil {
			panic(err)
		}
		naive, err := emiqs.NewNaiveSetSampler(dNaive, values)
		if err != nil {
			panic(err)
		}
		dNaive.ResetStats()
		naive.Query(r, s, nil)
		naiveIOs := dNaive.IOs()

		// Sorted-batch (no pool).
		dNaive.ResetStats()
		naive.SortedQuery(r, s, nil)
		sortedIOs := dNaive.IOs()

		// Pool: amortize over enough queries to include rebuilds.
		dPool, err := em.NewDevice(b, m)
		if err != nil {
			panic(err)
		}
		pool, err := emiqs.NewSetSampler(dPool, values, r)
		if err != nil {
			panic(err)
		}
		dPool.ResetStats()
		queries := 2 * n / s
		if queries < 4 {
			queries = 4
		}
		for i := 0; i < queries; i++ {
			pool.Query(r, s, nil)
		}
		poolIOs := float64(dPool.IOs()) / float64(queries)

		t.row(s, naiveIOs, sortedIOs, poolIOs)
	}
	t.flush()
	fmt.Fprintln(w, "expect: naive = s; sorted caps at ~n/B for huge s; pool ≈ (s/B)·log_{M/B}(n/B) — smallest throughout")
}

// RunE11 regenerates the §8 range-sampling table: warm per-query I/Os of
// the dyadic-pool structure vs naive random access, across selectivities.
func RunE11(w io.Writer, seed uint64) {
	fmt.Fprintln(w, "E11 — §8 EM WR range sampling (n = 2^16, B = 256, M = 4096, s = 1024)")
	t := newTable(w, "selectivity", "|S_q|", "naive_IOs", "pool_IOs_warm", "speedup")
	const n = 1 << 16
	const b, m = 256, 4096
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}
	r := rng.New(seed)
	d, err := em.NewDevice(b, m)
	if err != nil {
		panic(err)
	}
	rs, err := emiqs.NewRangeSampler(d, values, r)
	if err != nil {
		panic(err)
	}
	const s = 1024
	for _, sel := range []float64{0.01, 0.1, 0.5, 1.0} {
		k := int(sel * n)
		if k < 2 {
			k = 2
		}
		lo := float64((n - k) / 2)
		hi := lo + float64(k) - 1
		// Warm pools on this range.
		if _, ok := rs.Query(r, lo, hi, s, nil); !ok {
			panic("warm query empty")
		}
		d.ResetStats()
		const queries = 8
		for i := 0; i < queries; i++ {
			if _, ok := rs.Query(r, lo, hi, s, nil); !ok {
				panic("query empty")
			}
		}
		poolIOs := float64(d.IOs()) / queries
		naiveIOs := float64(s) // one random I/O per sample
		t.row(fmt.Sprintf("%.0f%%", sel*100), k, naiveIOs, poolIOs, naiveIOs/poolIOs)
	}
	t.flush()
	fmt.Fprintln(w, "expect: pool_IOs ≈ log_B n + s/B + pool-refill amortization ≪ naive s; speedup grows with B")
}
