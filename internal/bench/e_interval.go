package bench

import (
	"fmt"
	"io"

	"repro/internal/intervaltree"
	"repro/internal/rng"
)

// RunE15 exercises Theorem 5 on a different reporting query — interval
// stabbing — showing the coverage technique's portability: query cost
// stays polylogarithmic in n while a report-then-sample baseline pays
// |S_q|.
func RunE15(w io.Writer, seed uint64) {
	fmt.Fprintln(w, "E15 — Theorem 5 on the interval tree: stabbing IQS vs report-then-sample (s = 16)")
	t := newTable(w, "n", "|S_q|", "iqs_ns_per_query", "report_ns_per_query", "speedup")
	r := rng.New(seed)
	for _, n := range []int{1 << 14, 1 << 17, 1 << 20} {
		ivs := make([]intervaltree.Interval, n)
		wts := make([]float64, n)
		for i := range ivs {
			l := r.Float64() * 100
			ivs[i] = intervaltree.Interval{L: l, R: l + r.Float64()*10}
			wts[i] = r.Float64()*4 + 0.2
		}
		tree, err := intervaltree.New(ivs, wts)
		if err != nil {
			panic(err)
		}
		const queries = 100
		qs := make([]float64, queries)
		for i := range qs {
			qs[i] = 5 + r.Float64()*90
		}
		k := len(tree.Report(qs[0], nil))
		var dst []int
		dIQS := medianTime(3, func() {
			for _, q := range qs {
				dst, _ = tree.Query(r, q, 16, dst[:0])
			}
		})
		// Report-then-sample baseline: materialise S_q, then pick 16.
		dRep := medianTime(3, func() {
			for _, q := range qs {
				all := tree.Report(q, dst[:0])
				if len(all) > 0 {
					for i := 0; i < 16; i++ {
						_ = all[r.Intn(len(all))]
					}
				}
			}
		})
		iqsNs := nsPerOp(dIQS, queries)
		repNs := nsPerOp(dRep, queries)
		t.row(n, k, iqsNs, repNs, repNs/iqsNs)
	}
	t.flush()
	fmt.Fprintln(w, "expect: iqs cost polylog in n; report cost grows with |S_q| ∝ n; speedup grows with n")
}
