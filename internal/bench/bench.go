// Package bench is the experiment harness: each Experiment regenerates
// one of the tables indexed in DESIGN.md §2 (E1–E16, D4, A1–A3), printing
// paper-style rows to a writer. cmd/iqsbench is a thin CLI over this
// package, and the repository's bench_test.go exposes the same workloads
// as testing.B benchmarks.
//
// The harness measures wall-clock time (RAM experiments) or simulated
// I/Os (EM experiments). Absolute numbers are machine-specific; the
// *shape* — who wins, by what factor, where crossovers fall — is the
// reproduction target, as recorded in EXPERIMENTS.md.
package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/rng"
)

// Experiment is a runnable experiment producing a table.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer, seed uint64)
}

// All returns every experiment in DESIGN.md order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Theorem 1: alias structure build/sample cost and exactness", RunE1},
		{"E2", "§3.2 tree sampling: per-sample cost grows with log n", RunE2},
		{"E3", "Lemma 2 (alias augmentation): O(log n + s) query", RunE3},
		{"E4", "Theorem 3 (chunking): linear space, O(log n + s) query", RunE4},
		{"E5", "Lemma 4 (Euler tour): subtree sampling cost", RunE5},
		{"E6", "Theorem 5 on kd-tree: O(n^{1-1/d} + s) vs quadtree", RunE6},
		{"E7", "Theorem 5 on range tree: polylog cover, walk vs alias mode", RunE7},
		{"E8", "Theorem 6: approximate coverage rejection cost", RunE8},
		{"E9", "Theorem 8: set union sampling cost vs g", RunE9},
		{"E10", "§8 EM set sampling: pool vs naive I/Os", RunE10},
		{"E11", "§8 EM range sampling: I/Os vs naive random access", RunE11},
		{"E12", "§2 Benefit 1: error concentration, IQS vs dependent", RunE12},
		{"E13", "§2 Benefits 2-3: freshness of repeated queries", RunE13},
		{"E14", "§1 motivation: IQS vs report-then-sample crossover", RunE14},
		{"E15", "Theorem 5 portability: interval stabbing IQS", RunE15},
		{"E16", "Halfplane sampling via convex layers", RunE16},
		{"D4", "§9 Direction 4: approximate IQS, ε vs cost", RunD4},
		{"A1", "Ablation: chunk-size constant in Theorem 3", RunA1},
		{"A2", "Ablation: alias vs CDF binary search for cover sampling", RunA2},
		{"A3", "Ablation: dynamic alias vs rebuild-per-update", RunA3},
		{"S1", "Sharded coordinator vs single node: throughput and latency", RunS1},
	}
}

// Find returns the experiment with the given id (case-sensitive).
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// table is a simple aligned-column printer.
type table struct {
	w      io.Writer
	header []string
	rows   [][]string
}

func newTable(w io.Writer, header ...string) *table {
	return &table{w: w, header: header}
}

func (t *table) row(cells ...interface{}) {
	r := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			r[i] = v
		case float64:
			r[i] = fmt.Sprintf("%.3g", v)
		default:
			r[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, r)
}

func (t *table) flush() {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(t.w, "%-*s", widths[i]+2, c)
		}
		fmt.Fprintln(t.w)
	}
	printRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		for j := 0; j < widths[i]; j++ {
			sep[i] += "-"
		}
	}
	printRow(sep)
	for _, r := range t.rows {
		printRow(r)
	}
}

// medianTime runs fn `reps` times and returns the median duration.
func medianTime(reps int, fn func()) time.Duration {
	if reps < 1 {
		reps = 1
	}
	ds := make([]time.Duration, reps)
	for i := range ds {
		start := time.Now()
		fn()
		ds[i] = time.Since(start)
	}
	sort.Slice(ds, func(a, b int) bool { return ds[a] < ds[b] })
	return ds[len(ds)/2]
}

// nsPerOp converts a duration over `ops` operations to ns/op.
func nsPerOp(d time.Duration, ops int) float64 {
	if ops == 0 {
		return 0
	}
	return float64(d.Nanoseconds()) / float64(ops)
}

// seededValues builds n distinct-ish values and weights.
func seededValues(seed uint64, n int, weighted bool) (values, weights []float64) {
	r := rng.New(seed)
	values = make([]float64, n)
	weights = make([]float64, n)
	for i := range values {
		values[i] = r.Float64()
		if weighted {
			weights[i] = r.Float64()*9 + 0.5
		} else {
			weights[i] = 1
		}
	}
	return values, weights
}
