// Package samplepool serves weighted range-sampling queries from pools
// of pre-drawn samples, adapting the SWAT SamplePool idea (precomputed
// per-bucket pools over frozen distributions) to the IQS serving stack.
//
// A Pool is bound to one frozen *core.RangeSampler at a time. Entries
// are keyed by the canonical position window [a, b) the query range
// resolves to (core.RangeSampler.PosRange) — the same identity the
// PR-5 LRU cover cache keys on — so every request whose qualifying set
// is identical shares one pool entry. Each entry holds a buffer of
// values drawn i.i.d. weight-proportionally from that window by a
// background filler goroutine running the bulk sampling kernels against
// the bound (frozen) structure, off the request path.
//
// Independence contract (the point of the whole package): a pooled draw
// is consumed AT MOST ONCE. Pool contents are i.i.d. draws from exactly
// the per-range distribution the live kernel realises, produced from
// the filler's own private rng stream; consumption pops each draw from
// the buffer under the entry lock, so no draw can appear in two
// responses. A response assembled from j pooled draws plus k−j live
// kernel draws is therefore distributed exactly like k kernel draws,
// and distinct queries remain mutually independent (they partition a
// single i.i.d. sequence and never share randomness) — Equation 1 of
// the paper survives pooling unchanged.
//
// Staleness contract: TakeInto requires the caller to present the
// sampler it is actually serving from; if it is not the bound one the
// take is a miss, so a pooled draw can never come from a structure
// other than the caller's snapshot. Rebinding (snapshot swap, ingest
// rebuild) purges every entry.
package samplepool

import (
	"container/list"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/scratch"
)

// Config tunes a Pool. The zero value is usable: every field has a
// sensible default applied by New.
type Config struct {
	// Capacity caps the pre-drawn samples kept per entry (default 512).
	// Fills are demand-proportional: an entry starts with a small target
	// (a few multiples of its first request's k) that doubles toward
	// Capacity only while demand keeps draining it, so a window taken a
	// handful of times never costs a full Capacity-sized fill.
	Capacity int
	// MaxEntries caps the number of distinct position windows pooled at
	// once, evicted LRU (default 256).
	MaxEntries int
	// RefillFraction: when an entry's inventory falls below
	// RefillFraction*Capacity a refill is queued (default 0.5).
	RefillFraction float64
	// QueueDepth bounds the refill queue; excess refill requests are
	// dropped (the entry retries on its next take) (default 64).
	QueueDepth int
	// MinTakes is the number of takes a window must see before its
	// first fill is queued (default 1: fill on first miss). Raising it
	// protects the filler from uniform-random workloads where almost no
	// window is ever requested twice — cold windows then cost one tiny
	// entry and nothing else.
	MinTakes int
	// Seed seeds the filler's private rng stream (default 1).
	Seed uint64
	// Metrics receives the iqs_pool_* families; nil disables export.
	Metrics *metrics.Registry
	// Labels are attached to every exported series.
	Labels []metrics.Label
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 512
	}
	if c.MaxEntries <= 0 {
		c.MaxEntries = 256
	}
	if !(c.RefillFraction > 0 && c.RefillFraction <= 1) {
		c.RefillFraction = 0.5
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MinTakes <= 0 {
		c.MinTakes = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// entry is one pooled position window. buf holds pre-drawn values;
// takes pop from the tail, the filler appends, both under mu. The
// window fields and src are fixed at creation.
type entry struct {
	mu      sync.Mutex
	buf     []float64
	pending bool // a refill is queued or in flight
	takes   int  // takes seen before the first fill (MinTakes gate)
	filled  bool // at least one fill completed
	target  int  // demand-adaptive fill size, doubling toward Capacity

	gen    uint64
	src    *core.RangeSampler // frozen structure the draws come from
	a, b   int                // half-open sorted-position window
	lo, hi float64            // value interval resolving exactly to [a, b)

	elem *list.Element // LRU position, owned by Pool.mu
	dead atomic.Bool   // evicted or purged; filler skips it
}

// Stats is a point-in-time snapshot of pool effectiveness counters.
type Stats struct {
	Hits, PartialHits, Misses int64 // per take: full / partial / zero pooled draws
	Draws                     int64 // pooled draws consumed
	Refills, RefillDraws      int64 // filler batches and draws produced
	Invalidations, Evictions  int64
	Entries, Inventory        int // resident windows and total pooled draws
}

// Pool is a consume-once sample pool over one frozen RangeSampler.
// All methods are safe for concurrent use.
type Pool struct {
	cfg Config

	mu     sync.Mutex
	bound  *core.RangeSampler
	table  map[uint64]*entry
	lru    *list.List // front = most recent
	closed bool
	// seen is a fixed-size 2-way set-associative filter of window keys
	// observed exactly once (0 = empty way; packKey never yields 0
	// because windows require a < b). With MinTakes > 1 a window
	// registers a real entry (allocation, map insert, LRU slot) only on
	// its second sighting, so a uniform-random workload of one-shot
	// windows costs one array write per request and nothing else. Two
	// ways per set matter: a direct-mapped slot let two colliding hot
	// windows perpetually overwrite each other, so neither ever
	// re-observed its own key and both permanently missed the pool.
	// With two ways a colliding pair occupies one way each, and when a
	// set overflows the victim way is chosen at random — no access
	// pattern can keep evicting the same key before its second
	// sighting, so every hot window registers with probability 1.
	seen      [1024][2]uint64
	filterRng uint64 // xorshift state for random way replacement, under mu

	gen      atomic.Uint64 // bumped by every Bind/Invalidate
	refillCh chan *entry
	wg       sync.WaitGroup

	hits, partials, misses     *metrics.Counter
	draws, refills, refillDrws *metrics.Counter
	invalidations, evictions   *metrics.Counter
}

// New returns a started Pool (its filler goroutine is running). The
// pool serves nothing until Bind attaches a frozen sampler. Close it
// when done.
func New(cfg Config) *Pool {
	cfg = cfg.withDefaults()
	p := &Pool{
		cfg:       cfg,
		table:     make(map[uint64]*entry),
		lru:       list.New(),
		refillCh:  make(chan *entry, cfg.QueueDepth),
		filterRng: cfg.Seed*0x9e3779b97f4a7c15 | 1,
	}
	m := cfg.Metrics
	lb := cfg.Labels
	p.hits = m.Counter("iqs_pool_hits_total", "Sample requests fully served from the pool.", lb...)
	p.partials = m.Counter("iqs_pool_partial_hits_total", "Sample requests partially served from the pool.", lb...)
	p.misses = m.Counter("iqs_pool_misses_total", "Sample requests with no pooled draws available.", lb...)
	p.draws = m.Counter("iqs_pool_draws_total", "Pooled draws consumed (each at most once).", lb...)
	p.refills = m.Counter("iqs_pool_refills_total", "Background refill batches executed.", lb...)
	p.refillDrws = m.Counter("iqs_pool_refill_draws_total", "Draws produced by the background filler.", lb...)
	p.invalidations = m.Counter("iqs_pool_invalidations_total", "Pool purges from snapshot swaps and rebuilds.", lb...)
	p.evictions = m.Counter("iqs_pool_evictions_total", "Entries evicted by the LRU cap.", lb...)
	if m != nil {
		m.GaugeFunc("iqs_pool_entries", "Resident pooled position windows.", func() float64 {
			return float64(p.Snapshot().Entries)
		}, lb...)
		m.GaugeFunc("iqs_pool_inventory", "Total pooled draws resident across entries.", func() float64 {
			return float64(p.Snapshot().Inventory)
		}, lb...)
	}
	p.wg.Add(1)
	go p.fillerLoop()
	return p
}

// packKey packs a half-open position window into the LRU key, the same
// scheme the rangesample cover cache uses for its (a, b) keys.
func packKey(a, b int) uint64 { return uint64(uint32(a))<<32 | uint64(uint32(b)) }

// Bind atomically makes s the pool's frozen source and purges every
// entry drawn from the previous one. Callers invoke it wherever they
// already invalidate cover caches (snapshot swaps, ingest rebuilds), so
// a stale pooled draw can never outlive its structure. Bind(nil)
// disables pooled serving until the next Bind.
func (p *Pool) Bind(s *core.RangeSampler) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.bound == s {
		return
	}
	old := p.bound
	p.bound = s
	p.gen.Add(1)
	if old != nil {
		p.invalidations.Inc()
	}
	p.purgeLocked()
}

// Invalidate purges every pooled draw without changing the binding.
func (p *Pool) Invalidate() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.gen.Add(1)
	p.invalidations.Inc()
	p.purgeLocked()
}

func (p *Pool) purgeLocked() {
	for _, e := range p.table {
		e.dead.Store(true)
	}
	p.table = make(map[uint64]*entry)
	p.lru.Init()
	p.seen = [1024][2]uint64{}
}

// seenIdx maps a window key to its direct-mapped filter slot.
func seenIdx(key uint64) int {
	return int(key * 0x9e3779b97f4a7c15 >> 54) // top 10 bits of a Fibonacci hash
}

// registerOrFilterLocked is the shared cold-window path of TakeInto and
// Probe, called with p.mu held. With MinTakes > 1 the first sighting of
// a window only marks the seen filter — the entry (and, once MinTakes
// is reached, its first fill) materialises on a later take, so one-shot
// windows never pay an allocation.
func (p *Pool) registerOrFilterLocked(s *core.RangeSampler, a, b int, key uint64, k int) {
	takes := 1
	if p.cfg.MinTakes > 1 {
		set := &p.seen[seenIdx(key)]
		switch key {
		case set[0]:
			set[0] = 0
		case set[1]:
			set[1] = 0
		default:
			// First sighting: take an empty way, or — when both ways
			// hold other colliding once-seen keys — displace a way
			// chosen by the pool's rng. Any deterministic victim choice
			// (including hashing the key) admits an access pattern that
			// evicts each colliding hot key before its second sighting
			// forever; a random victim makes every hot key survive a
			// round with probability ≥ 2^-w, so all of them register
			// eventually regardless of interleaving.
			switch {
			case set[0] == 0:
				set[0] = key
			case set[1] == 0:
				set[1] = key
			default:
				p.filterRng ^= p.filterRng << 13
				p.filterRng ^= p.filterRng >> 7
				p.filterRng ^= p.filterRng << 17
				set[p.filterRng&1] = key
			}
			return
		}
		takes = 2
	}
	p.registerLocked(s, a, b, key, k, takes)
}

// TakeInto appends up to k pooled draws for [lo, hi] to dst and returns
// the extended slice plus the number taken. s must be the frozen
// sampler the caller is serving this request from: when it is not the
// currently bound structure the take is a guaranteed miss (never a
// stale draw). The caller draws the k−taken remainder from the live
// kernel; the combined response is distributed exactly like k kernel
// draws (see the package comment).
func (p *Pool) TakeInto(s *core.RangeSampler, lo, hi float64, k int, dst []float64) ([]float64, int) {
	if p == nil || k <= 0 || s == nil {
		return dst, 0
	}
	// PosRange is a pure read of the immutable structure — resolve the
	// window before taking the pool lock.
	a, b := s.PosRange(lo, hi)
	if a >= b {
		// Empty/invalid range: nothing to pool, let the kernel path
		// produce the canonical response.
		return dst, 0
	}
	key := packKey(a, b)
	p.mu.Lock()
	if p.closed || p.bound != s {
		p.mu.Unlock()
		return dst, 0
	}
	e := p.table[key]
	if e == nil {
		p.registerOrFilterLocked(s, a, b, key, k)
		p.misses.Inc()
		p.mu.Unlock()
		return dst, 0
	}
	p.lru.MoveToFront(e.elem)
	p.mu.Unlock()

	e.mu.Lock()
	j := len(e.buf)
	if j > k {
		j = k
	}
	if j > 0 {
		// Pop from the tail: each draw leaves the buffer the moment it
		// is served, which is the whole consume-once guarantee.
		dst = append(dst, e.buf[len(e.buf)-j:]...)
		e.buf = e.buf[:len(e.buf)-j]
	}
	e.takes++
	wantRefill := e.noteDemandLocked(p)
	e.mu.Unlock()

	if wantRefill {
		p.mu.Lock()
		p.enqueueLocked(e)
		p.mu.Unlock()
	}
	switch {
	case j == k:
		p.hits.Inc()
	case j > 0:
		p.partials.Inc()
	default:
		p.misses.Inc()
	}
	p.draws.Add(int64(j))
	return dst, j
}

// registerLocked creates, indexes and LRU-fronts the entry for window
// [a, b) of s, evicting past MaxEntries, and queues its first fill when
// MinTakes allows. k is the registering request's sample size, seeding
// the demand-adaptive fill target; takes is the demand already seen
// (2 when the window came through the seen filter). Called with p.mu
// held.
func (p *Pool) registerLocked(s *core.RangeSampler, a, b int, key uint64, k, takes int) *entry {
	target := 4 * k
	if target < 32 {
		target = 32
	}
	if target > p.cfg.Capacity {
		target = p.cfg.Capacity
	}
	e := &entry{
		gen: p.gen.Load(),
		src: s,
		a:   a, b: b,
		// The window's own boundary values query back to exactly
		// [a, b): position a holds the first value ≥ lo so no equal
		// value precedes it, symmetrically for b−1 (see fill).
		lo: s.ValueAt(a), hi: s.ValueAt(b - 1),
		target: target,
	}
	e.elem = p.lru.PushFront(e)
	p.table[key] = e
	for p.lru.Len() > p.cfg.MaxEntries {
		victim := p.lru.Remove(p.lru.Back()).(*entry)
		victim.dead.Store(true)
		delete(p.table, packKey(victim.a, victim.b))
		p.evictions.Inc()
	}
	e.takes = takes
	if e.takes >= p.cfg.MinTakes {
		p.enqueueLocked(e)
	}
	return e
}

// Probe reports whether a request for [lo, hi] with sample size k
// against s would currently be fully served from the pool, and records
// demand exactly like a take: a cold window is registered (and queued
// for fill once MinTakes probes/takes have been seen). The admission
// path probes every candidate request, so the windows traffic actually
// asks for warm up even while responses are served through a path that
// never consumes pooled draws (the request coalescer); once a window is
// warm the prober flips its traffic onto the consuming path. Probes
// consume no draws and move no hit/miss counters.
func (p *Pool) Probe(s *core.RangeSampler, lo, hi float64, k int) bool {
	if p == nil || s == nil || k <= 0 {
		return false
	}
	a, b := s.PosRange(lo, hi)
	if a >= b {
		return false
	}
	key := packKey(a, b)
	p.mu.Lock()
	if p.closed || p.bound != s {
		p.mu.Unlock()
		return false
	}
	e := p.table[key]
	if e == nil {
		p.registerOrFilterLocked(s, a, b, key, k)
		p.mu.Unlock()
		return false
	}
	p.lru.MoveToFront(e.elem)
	p.mu.Unlock()

	e.mu.Lock()
	e.takes++
	ok := len(e.buf) >= k
	wantRefill := e.noteDemandLocked(p)
	e.mu.Unlock()
	if wantRefill {
		p.mu.Lock()
		p.enqueueLocked(e)
		p.mu.Unlock()
	}
	return ok
}

// noteDemandLocked decides, under e.mu, whether this take/probe should
// queue a refill, and grows the fill target while demand keeps draining
// a previously filled entry — so inventory tracks each window's actual
// take rate instead of jumping straight to Capacity.
func (e *entry) noteDemandLocked(p *Pool) bool {
	ready := e.filled || e.takes >= p.cfg.MinTakes
	if e.pending || !ready || len(e.buf) >= int(float64(e.target)*p.cfg.RefillFraction) {
		return false
	}
	e.pending = true
	if e.filled && e.target < p.cfg.Capacity {
		e.target *= 2
		if e.target > p.cfg.Capacity {
			e.target = p.cfg.Capacity
		}
	}
	return true
}

// Hot reports whether a request for [lo, hi] with sample size k against
// s would currently be fully served from the pool. Unlike Probe it is a
// pure read: no entry is created, no fill queued, no LRU movement.
func (p *Pool) Hot(s *core.RangeSampler, lo, hi float64, k int) bool {
	if p == nil || s == nil || k <= 0 {
		return false
	}
	a, b := s.PosRange(lo, hi)
	if a >= b {
		return false
	}
	p.mu.Lock()
	if p.closed || p.bound != s {
		p.mu.Unlock()
		return false
	}
	e := p.table[packKey(a, b)]
	p.mu.Unlock()
	if e == nil {
		return false
	}
	e.mu.Lock()
	ok := len(e.buf) >= k
	e.mu.Unlock()
	return ok
}

// enqueueLocked hands e to the filler; called with p.mu held (which is
// what makes the send race-free against Close). Queue overflow drops
// the request — the entry re-queues on its next take.
func (p *Pool) enqueueLocked(e *entry) {
	if p.closed {
		e.mu.Lock()
		e.pending = false
		e.mu.Unlock()
		return
	}
	e.mu.Lock()
	e.pending = true
	e.mu.Unlock()
	select {
	case p.refillCh <- e:
	default:
		e.mu.Lock()
		e.pending = false
		e.mu.Unlock()
	}
}

// fillerLoop drains refill requests with a private rng stream and
// arena, so pool randomness is independent of every request stream.
func (p *Pool) fillerLoop() {
	defer p.wg.Done()
	r := rng.New(p.cfg.Seed)
	sc := new(scratch.Arena)
	buf := make([]float64, 0, p.cfg.Capacity)
	for e := range p.refillCh {
		p.fill(e, r, sc, buf)
	}
}

// fill tops e up to Capacity with fresh i.i.d. draws from its frozen
// source. The draw interval [e.lo, e.hi] resolves to exactly the window
// [a, b): e.lo is the value at position a, and since a was the first
// position with value ≥ the original query's lo, no earlier position
// carries an equal value (the array is sorted, so an equal predecessor
// would itself have been ≥ lo); symmetrically no position ≥ b carries
// e.hi. The refill distribution is therefore identical to the kernel's
// for every query mapping to this window.
func (p *Pool) fill(e *entry, r *rng.Source, sc *scratch.Arena, buf []float64) {
	clearPending := func() {
		e.mu.Lock()
		e.pending = false
		e.mu.Unlock()
	}
	if e.dead.Load() || e.gen != p.gen.Load() {
		clearPending()
		return
	}
	e.mu.Lock()
	need := e.target - len(e.buf)
	e.mu.Unlock()
	if need <= 0 {
		clearPending()
		return
	}
	out, ok := e.src.SampleInto(r, e.lo, e.hi, need, buf[:0], sc)
	if !ok {
		clearPending()
		return
	}
	// The bulk kernel may emit a query's draws grouped by cover node:
	// i.i.d. as a multiset but order-correlated (adjacent draws share a
	// node). One kernel response absorbs that whole batch so it never
	// shows, but the pool slices a batch across MANY responses — a
	// uniform random permutation (independent of the values) restores
	// the exact i.i.d. sequence law, so cross-query independence
	// survives the slicing.
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	e.mu.Lock()
	// Re-check under the lock: a purge between the draw and here means
	// the structure is being retired — drop the batch.
	if e.dead.Load() || e.gen != p.gen.Load() {
		e.pending = false
		e.mu.Unlock()
		return
	}
	e.buf = append(e.buf, out...)
	e.pending = false
	e.filled = true
	e.mu.Unlock()
	p.refills.Inc()
	p.refillDrws.Add(int64(len(out)))
}

// Snapshot returns current counter values and inventory.
func (p *Pool) Snapshot() Stats {
	if p == nil {
		return Stats{}
	}
	st := Stats{
		Hits:          p.hits.Value(),
		PartialHits:   p.partials.Value(),
		Misses:        p.misses.Value(),
		Draws:         p.draws.Value(),
		Refills:       p.refills.Value(),
		RefillDraws:   p.refillDrws.Value(),
		Invalidations: p.invalidations.Value(),
		Evictions:     p.evictions.Value(),
	}
	p.mu.Lock()
	st.Entries = len(p.table)
	ents := make([]*entry, 0, len(p.table))
	for _, e := range p.table {
		ents = append(ents, e)
	}
	p.mu.Unlock()
	for _, e := range ents {
		e.mu.Lock()
		st.Inventory += len(e.buf)
		e.mu.Unlock()
	}
	return st
}

// WaitIdle blocks until the refill queue is drained and no fill is in
// flight — a test/benchmark helper for deterministic warm-up.
func (p *Pool) WaitIdle() {
	for {
		p.mu.Lock()
		queued := len(p.refillCh)
		ents := make([]*entry, 0, len(p.table))
		for _, e := range p.table {
			ents = append(ents, e)
		}
		p.mu.Unlock()
		busy := queued > 0
		for _, e := range ents {
			e.mu.Lock()
			busy = busy || e.pending
			e.mu.Unlock()
		}
		if !busy {
			return
		}
		// The filler is single-goroutine; yield until it drains.
		runtime.Gosched()
	}
}

// Close stops the filler and disables the pool. Safe to call once.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.purgeLocked()
	close(p.refillCh)
	p.mu.Unlock()
	p.wg.Wait()
}
