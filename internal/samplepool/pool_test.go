package samplepool

import (
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/stats"
)

// testSampler builds a chunked sampler over n distinct integer values
// with a deterministic skewed weight profile, so every draw is
// identifiable by value and the true per-position probabilities are
// known in closed form.
func testSampler(t testing.TB, n int) *core.RangeSampler {
	t.Helper()
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
		weights[i] = 1 + float64(i%7)
	}
	s, err := core.NewRangeSampler(core.KindChunked, values, weights)
	if err != nil {
		t.Fatalf("NewRangeSampler: %v", err)
	}
	return s
}

// entryFor exposes the pool entry backing [lo, hi] for whitebox tests.
func entryFor(p *Pool, s *core.RangeSampler, lo, hi float64) *entry {
	a, b := s.PosRange(lo, hi)
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.table[packKey(a, b)]
}

// blockRefills marks the entry pending so no further refill can be
// queued — freezing the inventory lets tests drain it to exhaustion.
func blockRefills(e *entry) {
	e.mu.Lock()
	e.pending = true
	e.mu.Unlock()
}

// warm primes the pool entry for [lo, hi] and waits for the fill.
func warm(t testing.TB, p *Pool, s *core.RangeSampler, lo, hi float64) *entry {
	t.Helper()
	if _, took := p.TakeInto(s, lo, hi, 1, nil); took != 0 {
		t.Fatalf("cold take returned %d pooled draws, want 0", took)
	}
	p.WaitIdle()
	e := entryFor(p, s, lo, hi)
	if e == nil {
		t.Fatal("no entry after warm-up")
	}
	return e
}

func TestConsumeOnceExhaustsAndFallsBack(t *testing.T) {
	s := testSampler(t, 1000)
	p := New(Config{Capacity: 64, Seed: 7})
	defer p.Close()
	p.Bind(s)

	e := warm(t, p, s, 100, 900)
	blockRefills(e)
	e.mu.Lock()
	remembered := append([]float64(nil), e.buf...)
	e.mu.Unlock()
	// Fills are demand-proportional: the k=1 warm-up seeds the minimum
	// initial target of 32, not the full Capacity.
	if len(remembered) != 32 {
		t.Fatalf("filled %d draws, want initial demand target 32", len(remembered))
	}

	// Drain in chunks of 7: every take must pop exactly the tail of the
	// remembered buffer — each pre-drawn sample served at most once, in
	// a single response, until strict exhaustion.
	var served []float64
	for {
		out, took := p.TakeInto(s, 100, 900, 7, nil)
		if took == 0 {
			break
		}
		if took != len(out) {
			t.Fatalf("took=%d but len(out)=%d", took, len(out))
		}
		served = append(served, out...)
	}
	if len(served) != len(remembered) {
		t.Fatalf("served %d pooled draws, want exactly the %d filled", len(served), len(remembered))
	}
	// Multiset equality: no draw duplicated, none invented.
	count := func(xs []float64) map[float64]int {
		m := make(map[float64]int)
		for _, x := range xs {
			m[x]++
		}
		return m
	}
	cs, cr := count(served), count(remembered)
	if len(cs) != len(cr) {
		t.Fatalf("served value multiset differs: %d vs %d distinct", len(cs), len(cr))
	}
	for v, n := range cr {
		if cs[v] != n {
			t.Fatalf("value %v served %d times, filled %d times", v, cs[v], n)
		}
	}
	// Exhausted pool must strictly fall back: zero pooled draws.
	if _, took := p.TakeInto(s, 100, 900, 3, nil); took != 0 {
		t.Fatalf("exhausted pool still served %d draws", took)
	}
}

func TestConsumeOnceConcurrent(t *testing.T) {
	s := testSampler(t, 1000)
	p := New(Config{Capacity: 512, Seed: 11})
	defer p.Close()
	p.Bind(s)

	e := warm(t, p, s, 0, 999)
	blockRefills(e)
	e.mu.Lock()
	remembered := append([]float64(nil), e.buf...)
	e.mu.Unlock()

	const workers = 8
	var (
		wg  sync.WaitGroup
		mu  sync.Mutex
		all []float64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var got []float64
			for {
				out, took := p.TakeInto(s, 0, 999, 5, nil)
				if took == 0 {
					break
				}
				got = append(got, out...)
			}
			mu.Lock()
			all = append(all, got...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	if len(all) != len(remembered) {
		t.Fatalf("concurrent drains served %d draws total, want exactly %d (each draw once)", len(all), len(remembered))
	}
	cs := make(map[float64]int)
	for _, v := range all {
		cs[v]++
	}
	cr := make(map[float64]int)
	for _, v := range remembered {
		cr[v]++
	}
	for v, n := range cr {
		if cs[v] != n {
			t.Fatalf("value %v served %d times across goroutines, filled %d times", v, cs[v], n)
		}
	}
}

// takePooled collects n pooled draws for [lo, hi], waiting for refills
// between takes so every draw comes from the pool path.
func takePooled(t testing.TB, p *Pool, s *core.RangeSampler, lo, hi float64, n int) []float64 {
	t.Helper()
	out := make([]float64, 0, n)
	for len(out) < n {
		got, took := p.TakeInto(s, lo, hi, min(16, n-len(out)), nil)
		if took == 0 {
			p.WaitIdle()
			continue
		}
		out = append(out, got...)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// binCounts maps integer-valued draws from [lo, hi] to per-position
// counts.
func binCounts(t testing.TB, draws []float64, lo, hi float64) []int {
	t.Helper()
	n := int(hi-lo) + 1
	counts := make([]int, n)
	for _, v := range draws {
		i := int(v - lo)
		if i < 0 || i >= n {
			t.Fatalf("draw %v outside [%v, %v]", v, lo, hi)
		}
		counts[i]++
	}
	return counts
}

// TestPoolHitMatchesKernelDistribution is the golden-seed equivalence
// gate: pooled draws and live-kernel draws for the same range must be
// statistically indistinguishable (chi-squared two-sample on the
// per-element counts, KS two-sample on the raw values).
func TestPoolHitMatchesKernelDistribution(t *testing.T) {
	s := testSampler(t, 400)
	p := New(Config{Capacity: 1024, Seed: 20250808})
	defer p.Close()
	p.Bind(s)

	const lo, hi = 50, 149 // 100 in-range elements
	const N = 20000
	pooled := takePooled(t, p, s, lo, hi, N)

	r := rng.New(99)
	kernel := make([]float64, 0, N)
	for len(kernel) < N {
		out, ok := s.Sample(r, lo, hi, min(64, N-len(kernel)))
		if !ok {
			t.Fatal("kernel sample failed")
		}
		kernel = append(kernel, out...)
	}

	cp := binCounts(t, pooled, lo, hi)
	ck := binCounts(t, kernel, lo, hi)
	stat, dof, err := stats.ChiSquareTwoSample(cp, ck)
	if err != nil {
		t.Fatalf("ChiSquareTwoSample: %v", err)
	}
	if crit := stats.ChiSquareCritical(dof, 0.001); stat > crit {
		t.Fatalf("pooled vs kernel chi2 = %.2f > crit %.2f (dof %d)", stat, crit, dof)
	}
	ks, err := stats.KSTwoSample(pooled, kernel)
	if err != nil {
		t.Fatalf("KSTwoSample: %v", err)
	}
	if crit := stats.KSTwoSampleCritical(len(pooled), len(kernel), 0.001); ks > crit {
		t.Fatalf("pooled vs kernel KS = %.4f > crit %.4f", ks, crit)
	}
}

// TestPooledDrawsIndependent checks within-sequence independence of
// pooled draws: consecutive draw pairs binned into a joint grid must
// match the product of the true marginals.
func TestPooledDrawsIndependent(t *testing.T) {
	s := testSampler(t, 200)
	p := New(Config{Capacity: 1024, Seed: 31})
	defer p.Close()
	p.Bind(s)

	const lo, hi = 20, 99 // 80 elements
	const N = 40000
	draws := takePooled(t, p, s, lo, hi, N)

	// True marginal mass of 4 coarse value bins.
	const bins = 4
	a, b := s.PosRange(lo, hi)
	total := s.PrefixWeight(b) - s.PrefixWeight(a)
	span := float64(hi-lo+1) / bins
	mass := make([]float64, bins)
	for pos := a; pos < b; pos++ {
		bi := int((s.ValueAt(pos) - lo) / span)
		if bi >= bins {
			bi = bins - 1
		}
		mass[bi] += s.WeightAt(pos) / total
	}
	binOf := func(v float64) int {
		bi := int((v - lo) / span)
		if bi >= bins {
			bi = bins - 1
		}
		return bi
	}
	pairs := N / 2
	obs := make([]int, bins*bins)
	for i := 0; i+1 < N; i += 2 {
		obs[binOf(draws[i])*bins+binOf(draws[i+1])]++
	}
	exp := make([]float64, bins*bins)
	for i := 0; i < bins; i++ {
		for j := 0; j < bins; j++ {
			exp[i*bins+j] = mass[i] * mass[j] * float64(pairs)
		}
	}
	stat, err := stats.ChiSquare(obs, exp)
	if err != nil {
		t.Fatalf("ChiSquare: %v", err)
	}
	if crit := stats.ChiSquareCritical(bins*bins-1, 0.001); stat > crit {
		t.Fatalf("consecutive pooled draws dependent: chi2 = %.2f > crit %.2f", stat, crit)
	}
}

// TestMixedPooledKernelDistribution drains the pool mid-request so
// responses mix pooled and kernel draws, then checks the combined
// output against the exact expected distribution — the mixing claim the
// partial-hit path relies on.
func TestMixedPooledKernelDistribution(t *testing.T) {
	s := testSampler(t, 300)
	p := New(Config{Capacity: 16, Seed: 47}) // capacity < k: every hit is partial
	defer p.Close()
	p.Bind(s)

	const lo, hi = 10, 59 // 50 elements
	const N = 30000
	r := rng.New(555)
	sc := core.GetScratch()
	defer core.PutScratch(sc)
	combined := make([]float64, 0, N)
	for len(combined) < N {
		k := min(24, N-len(combined))
		p.WaitIdle() // let the single-CPU filler top the entry up
		out, took := p.TakeInto(s, lo, hi, k, nil)
		if rem := k - took; rem > 0 {
			var ok bool
			out, ok = s.SampleInto(r, lo, hi, rem, out, sc)
			if !ok {
				t.Fatal("kernel fallback failed")
			}
		}
		combined = append(combined, out...)
	}

	a, b := s.PosRange(lo, hi)
	total := s.PrefixWeight(b) - s.PrefixWeight(a)
	obs := binCounts(t, combined, lo, hi)
	exp := make([]float64, b-a)
	for pos := a; pos < b; pos++ {
		exp[pos-a] = s.WeightAt(pos) / total * float64(N)
	}
	stat, err := stats.ChiSquare(obs, exp)
	if err != nil {
		t.Fatalf("ChiSquare: %v", err)
	}
	if crit := stats.ChiSquareCritical(b-a-1, 0.001); stat > crit {
		t.Fatalf("mixed pooled+kernel draws off-distribution: chi2 = %.2f > crit %.2f", stat, crit)
	}
	st := p.Snapshot()
	if st.PartialHits == 0 {
		t.Fatal("test exercised no partial hits; tighten Capacity")
	}
}

func TestStalenessGuardAndBindInvalidation(t *testing.T) {
	s1 := testSampler(t, 500)
	s2 := testSampler(t, 500)
	p := New(Config{Capacity: 64, Seed: 3})
	defer p.Close()
	p.Bind(s1)
	warm(t, p, s1, 0, 499)

	// A take presenting a different sampler than the bound one must be
	// a guaranteed miss even though the window matches.
	if _, took := p.TakeInto(s2, 0, 499, 8, nil); took != 0 {
		t.Fatalf("take against unbound sampler served %d pooled draws", took)
	}

	// Rebinding purges everything drawn from s1.
	p.Bind(s2)
	st := p.Snapshot()
	if st.Entries != 0 || st.Inventory != 0 {
		t.Fatalf("after rebind: %d entries / %d inventory, want 0/0", st.Entries, st.Inventory)
	}
	if st.Invalidations == 0 {
		t.Fatal("rebind did not count an invalidation")
	}
	// And old-sampler takes stay misses forever.
	warm(t, p, s2, 0, 499)
	if _, took := p.TakeInto(s1, 0, 499, 8, nil); took != 0 {
		t.Fatalf("take against retired sampler served %d pooled draws", took)
	}
}

func TestInvalidatePurges(t *testing.T) {
	s := testSampler(t, 100)
	p := New(Config{Capacity: 32, Seed: 5})
	defer p.Close()
	p.Bind(s)
	warm(t, p, s, 0, 99)
	p.Invalidate()
	if st := p.Snapshot(); st.Entries != 0 || st.Inventory != 0 {
		t.Fatalf("after Invalidate: %d entries / %d inventory", st.Entries, st.Inventory)
	}
	// Binding unchanged: the same structure re-pools on demand.
	warm(t, p, s, 0, 99)
	if out, took := p.TakeInto(s, 0, 99, 4, nil); took != 4 || len(out) != 4 {
		t.Fatalf("re-pool after Invalidate: took %d", took)
	}
}

func TestLRUEviction(t *testing.T) {
	s := testSampler(t, 1000)
	p := New(Config{Capacity: 16, MaxEntries: 4, Seed: 13})
	defer p.Close()
	p.Bind(s)
	for i := 0; i < 6; i++ {
		lo := float64(i * 100)
		p.TakeInto(s, lo, lo+50, 1, nil)
	}
	p.WaitIdle()
	st := p.Snapshot()
	if st.Entries > 4 {
		t.Fatalf("%d entries resident, cap is 4", st.Entries)
	}
	if st.Evictions < 2 {
		t.Fatalf("evictions = %d, want ≥ 2", st.Evictions)
	}
}

func TestHotProbe(t *testing.T) {
	s := testSampler(t, 200)
	p := New(Config{Capacity: 32, Seed: 17})
	defer p.Close()
	p.Bind(s)
	if p.Hot(s, 0, 199, 1) {
		t.Fatal("cold pool reported hot")
	}
	e := warm(t, p, s, 0, 199)
	if !p.Hot(s, 0, 199, 32) {
		t.Fatal("full entry not hot for k = capacity")
	}
	if p.Hot(s, 0, 199, 33) {
		t.Fatal("hot for k > inventory")
	}
	blockRefills(e)
	for {
		if _, took := p.TakeInto(s, 0, 199, 8, nil); took == 0 {
			break
		}
	}
	if p.Hot(s, 0, 199, 1) {
		t.Fatal("exhausted entry reported hot")
	}
}

func TestEmptyRangeAndEdgeCases(t *testing.T) {
	s := testSampler(t, 100)
	p := New(Config{Seed: 19})
	defer p.Close()
	p.Bind(s)
	if _, took := p.TakeInto(s, 200, 300, 4, nil); took != 0 {
		t.Fatal("empty range served pooled draws")
	}
	if _, took := p.TakeInto(s, math.NaN(), 10, 4, nil); took != 0 {
		t.Fatal("invalid range served pooled draws")
	}
	if _, took := p.TakeInto(s, 0, 99, 0, nil); took != 0 {
		t.Fatal("k=0 served pooled draws")
	}
	if _, took := p.TakeInto(nil, 0, 99, 4, nil); took != 0 {
		t.Fatal("nil sampler served pooled draws")
	}
	var nilPool *Pool
	if _, took := nilPool.TakeInto(s, 0, 99, 4, nil); took != 0 {
		t.Fatal("nil pool served pooled draws")
	}
}

func TestMinTakesGatesFirstFill(t *testing.T) {
	s := testSampler(t, 100)
	p := New(Config{Capacity: 16, MinTakes: 3, Seed: 37})
	defer p.Close()
	p.Bind(s)
	for take := 1; take <= 2; take++ {
		p.TakeInto(s, 0, 99, 1, nil)
		p.WaitIdle()
		if st := p.Snapshot(); st.Refills != 0 {
			t.Fatalf("fill ran after %d takes, MinTakes is 3", take)
		}
	}
	p.TakeInto(s, 0, 99, 1, nil)
	p.WaitIdle()
	if st := p.Snapshot(); st.Refills != 1 {
		t.Fatalf("refills = %d after reaching MinTakes, want 1", st.Refills)
	}
	if _, took := p.TakeInto(s, 0, 99, 4, nil); took != 4 {
		t.Fatalf("took %d after fill, want 4", took)
	}
}

func TestCloseDisablesPool(t *testing.T) {
	s := testSampler(t, 100)
	p := New(Config{Seed: 23})
	p.Bind(s)
	warm(t, p, s, 0, 99)
	p.Close()
	if _, took := p.TakeInto(s, 0, 99, 4, nil); took != 0 {
		t.Fatal("closed pool served pooled draws")
	}
	p.Close() // idempotent
}

func TestMetricsRegistered(t *testing.T) {
	reg := metrics.NewRegistry()
	s := testSampler(t, 100)
	p := New(Config{Capacity: 16, Seed: 29, Metrics: reg})
	defer p.Close()
	p.Bind(s)
	warm(t, p, s, 0, 99)
	p.TakeInto(s, 0, 99, 4, nil)
	st := p.Snapshot()
	if st.Hits != 1 || st.Draws != 4 || st.Misses == 0 || st.Refills == 0 {
		t.Fatalf("stats off: %+v", st)
	}
}

// TestCollidingHotWindowsBothRegister: with MinTakes > 1, two hot
// windows whose keys hash to the same seen-filter set used to overwrite
// each other's direct-mapped slot on every sighting — neither ever
// re-observed its own key, so neither registered and both permanently
// missed the pool. With the 2-way filter both must register within two
// sightings each and then serve pooled draws.
func TestCollidingHotWindowsBothRegister(t *testing.T) {
	const n = 4096
	s := testSampler(t, n)

	// Find two single-position windows landing in the same filter set
	// (pigeonhole over 1024 sets guarantees a pair among n windows).
	firstIn := map[int]int{}
	wa, wb := -1, -1
	for a := 0; a < n; a++ {
		i := seenIdx(packKey(a, a+1))
		if first, ok := firstIn[i]; ok {
			wa, wb = first, a
			break
		}
		firstIn[i] = a
	}
	if wa < 0 {
		t.Fatal("no colliding windows found")
	}

	p := New(Config{Capacity: 64, MinTakes: 2, Seed: 11})
	defer p.Close()
	p.Bind(s)

	for i := 0; i < 4; i++ {
		p.TakeInto(s, float64(wa), float64(wa), 1, nil)
		p.TakeInto(s, float64(wb), float64(wb), 1, nil)
	}
	p.WaitIdle()
	if st := p.Snapshot(); st.Entries != 2 {
		t.Fatalf("entries = %d after alternating colliding hot windows, want 2", st.Entries)
	}
	if _, took := p.TakeInto(s, float64(wa), float64(wa), 1, nil); took != 1 {
		t.Fatalf("window A served %d pooled draws, want 1", took)
	}
	if _, took := p.TakeInto(s, float64(wb), float64(wb), 1, nil); took != 1 {
		t.Fatalf("window B served %d pooled draws, want 1", took)
	}
}

// TestCollidingHotWindowsOverfullSet drives four hot windows into one
// 2-way set — more colliding keys than ways. Random way replacement
// lets each key survive to its second sighting with positive
// probability per round, and registrations permanently remove
// competitors, so all four must register within the (deterministic,
// seeded) hammer loop.
func TestCollidingHotWindowsOverfullSet(t *testing.T) {
	const n = 1 << 14
	s := testSampler(t, n)

	bySet := map[int][]int{}
	var ws []int
	for a := 0; a < n; a++ {
		i := seenIdx(packKey(a, a+1))
		bySet[i] = append(bySet[i], a)
		if len(bySet[i]) == 4 {
			ws = bySet[i]
			break
		}
	}
	if ws == nil {
		t.Fatal("no 4-way colliding windows found")
	}

	p := New(Config{Capacity: 64, MinTakes: 2, Seed: 13})
	defer p.Close()
	p.Bind(s)

	for i := 0; i < 64; i++ {
		for _, w := range ws {
			p.TakeInto(s, float64(w), float64(w), 1, nil)
		}
	}
	p.WaitIdle()
	if st := p.Snapshot(); st.Entries != len(ws) {
		t.Fatalf("entries = %d after hammering %d colliding hot windows, want all registered", st.Entries, len(ws))
	}
}
