package samplepool

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

// offsetSampler builds a sampler whose values occupy [base, base+n):
// disjoint value ranges per generation make a cross-generation pooled
// draw detectable by value alone.
func offsetSampler(t testing.TB, base float64, n int) *core.RangeSampler {
	t.Helper()
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := range values {
		values[i] = base + float64(i)
		weights[i] = 1 + float64(i%5)
	}
	s, err := core.NewRangeSampler(core.KindChunked, values, weights)
	if err != nil {
		t.Fatalf("NewRangeSampler: %v", err)
	}
	return s
}

// TestBindInvalidateTakeHammer is the pool half of the snapshot-swap
// ordering guard (run under -race): takers hammer TakeInto against
// whichever sampler they last observed as current while a swapper
// rebinds the pool between two generations with disjoint value ranges
// and invalidates the retired structure's cover caches — the exact
// retire sequence the service's snapshot swap and the ingest rebuild
// run. The staleness contract under test: a take presenting sampler s
// returns pooled draws only when s is still the bound structure, so no
// draw from generation A can ever surface in a take against generation
// B, regardless of how the purge interleaves with concurrent fills.
func TestBindInvalidateTakeHammer(t *testing.T) {
	const n = 512
	gens := []*core.RangeSampler{
		offsetSampler(t, 0, n),
		offsetSampler(t, 10000, n),
	}
	bases := []float64{0, 10000}
	p := New(Config{Capacity: 128, MinTakes: 1, Seed: 5})
	defer p.Close()
	var current atomic.Int32
	p.Bind(gens[0])

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			dst := make([]float64, 0, 16)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				gi := current.Load()
				s, base := gens[gi], bases[gi]
				lo := base + float64((id*37+i)%128)
				hi := lo + 64
				out, took := p.TakeInto(s, lo, hi, 8, dst[:0])
				if len(out) != took {
					t.Errorf("TakeInto returned %d values for %d takes", len(out), took)
					return
				}
				for _, v := range out {
					// A draw outside the presented sampler's window is
					// stale inventory from the other generation (or a
					// torn fill) leaking through the swap.
					if v < lo || v > hi {
						t.Errorf("pooled draw %v outside [%v, %v] of generation %d", v, lo, hi, gi)
						return
					}
				}
				if i%16 == 0 {
					runtime.Gosched()
				}
			}
		}(g)
	}
	// The swapper: retire one generation, bind the other, purge the
	// retiree's cover caches — with takers racing every step.
	for i := 0; i < 300; i++ {
		next := int32((i + 1) % 2)
		current.Store(next)
		p.Bind(gens[next])
		gens[1-next].InvalidateCovers()
		if i%8 == 0 {
			p.Invalidate()
		}
		runtime.Gosched()
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	// The pool must still serve after the swap storm: warm one window
	// on the final binding and take from it.
	final := current.Load()
	s, base := gens[final], bases[final]
	lo, hi := base+10, base+80
	for i := 0; i < 4096; i++ {
		if p.Hot(s, lo, hi, 4) {
			break
		}
		p.TakeInto(s, lo, hi, 4, nil)
		runtime.Gosched()
	}
	if _, took := p.TakeInto(s, lo, hi, 4, nil); took == 0 {
		t.Fatal("pool serves nothing after the swap storm")
	}
}
