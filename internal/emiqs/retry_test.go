package emiqs

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/em"
	"repro/internal/rng"
)

func faultFreeDevice(t *testing.T) *em.Device {
	t.Helper()
	dev, err := em.NewDevice(16, 256)
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

func TestRangeSamplerQueryRetrySurvivesFaults(t *testing.T) {
	dev := faultFreeDevice(t)
	values := make([]float64, 128)
	for i := range values {
		values[i] = float64(i)
	}
	rs, err := NewRangeSampler(dev, values, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// Faults start only after the (fault-free) build. An attempt that
	// triggers a pool refill performs on the order of a hundred I/Os, so
	// the per-I/O fault rate must be low enough that whole-operation
	// retry converges; at 1% an attempt is clean with probability ≈ 0.3
	// and 50 attempts essentially always suffice.
	dev.SetFaultPolicy(&em.FaultPolicy{ReadFailProb: 0.01, WriteFailProb: 0.01, Seed: 5})
	rp := em.RetryPolicy{MaxAttempts: 50, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond}
	r := rng.New(2)
	total := 0
	for q := 0; q < 30; q++ {
		out, ok, err := rs.QueryRetry(r, 20, 100, 10, nil, rp)
		if err != nil {
			t.Fatalf("query %d: %v", q, err)
		}
		if !ok {
			t.Fatalf("query %d: empty range", q)
		}
		for _, v := range out {
			if v < 20 || v > 100 {
				t.Fatalf("query %d: sample %v outside range", q, v)
			}
		}
		total += len(out)
	}
	if total != 30*10 {
		t.Fatalf("got %d samples, want %d", total, 30*10)
	}
	if dev.FaultsInjected() == 0 {
		t.Fatal("no faults injected at p=0.01 — test exercised nothing")
	}
}

func TestSetSamplerQueryRetryExhaustsOnPermanentFault(t *testing.T) {
	dev := faultFreeDevice(t)
	values := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	ss, err := NewSetSampler(dev, values, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	dev.SetFaultPolicy(&em.FaultPolicy{ReadFailProb: 1, Seed: 4})
	_, qerr := ss.QueryRetry(rng.New(4), 4, nil, em.RetryPolicy{MaxAttempts: 3})
	if qerr == nil || !errors.Is(qerr, em.ErrFault) {
		t.Fatalf("want exhausted fault error, got %v", qerr)
	}
}

// QueryRetryContext with an already-cancelled context must return
// promptly with the context error instead of sleeping out the backoff
// schedule against a permanently faulted device.
func TestQueryRetryContextAlreadyCancelled(t *testing.T) {
	dev := faultFreeDevice(t)
	values := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	rs, err := NewRangeSampler(dev, values, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	dev.SetFaultPolicy(&em.FaultPolicy{ReadFailProb: 1, Seed: 10})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, _, qerr := rs.QueryRetryContext(ctx, rng.New(11), 1, 8, 4, nil,
		em.RetryPolicy{MaxAttempts: 10, BaseDelay: time.Second})
	if !errors.Is(qerr, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", qerr)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("cancelled retry took %v", d)
	}
	ss, err := NewSetSampler(faultFreeDevice(t), values, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	if _, qerr := ss.QueryRetryContext(ctx, rng.New(13), 2, nil, em.DefaultRetry); !errors.Is(qerr, context.Canceled) {
		t.Fatalf("set sampler: want context.Canceled, got %v", qerr)
	}
}
