package emiqs

import (
	"math"
	"testing"

	"repro/internal/em"
	"repro/internal/rng"
)

func newDev(t testing.TB, b, m int) *em.Device {
	t.Helper()
	d, err := em.NewDevice(b, m)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func chi2Crit(dof int) float64 {
	z := 3.719
	d := float64(dof)
	x := 1 - 2/(9*d) + z*math.Sqrt(2/(9*d))
	return d * x * x * x
}

func TestSetSamplerEmpty(t *testing.T) {
	d := newDev(t, 8, 64)
	if _, err := NewSetSampler(d, nil, rng.New(1)); err != ErrEmpty {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewNaiveSetSampler(d, nil); err != ErrEmpty {
		t.Fatalf("err = %v", err)
	}
}

func TestSetSamplerUniform(t *testing.T) {
	d := newDev(t, 16, 256)
	const n = 32
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}
	r := rng.New(2)
	s, err := NewSetSampler(d, values, r)
	if err != nil {
		t.Fatal(err)
	}
	const draws = 64000 // forces many pool rebuilds (pool size n=32)
	counts := make([]int, n)
	out := s.Query(r, draws, nil)
	if len(out) != draws {
		t.Fatalf("drew %d", len(out))
	}
	for _, v := range out {
		counts[int(v)]++
	}
	expected := float64(draws) / n
	chi2 := 0.0
	for _, c := range counts {
		diff := float64(c) - expected
		chi2 += diff * diff / expected
	}
	if chi2 > chi2Crit(n-1) {
		t.Fatalf("chi2 = %v", chi2)
	}
	if s.Rebuilds() < draws/n-2 {
		t.Fatalf("rebuilds = %d, expected ~%d", s.Rebuilds(), draws/n)
	}
}

func TestSetSamplerBeatsNaiveOnIOs(t *testing.T) {
	// The headline EM claim (E10): amortized pool cost
	// O((s/B)·log_{M/B}(n/B)) ≪ naive O(s).
	const n = 1 << 14
	b, m := 256, 4096
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}
	r := rng.New(3)

	dPool := newDev(t, b, m)
	pool, err := NewSetSampler(dPool, values, r)
	if err != nil {
		t.Fatal(err)
	}
	dPool.ResetStats()
	const totalSamples = 1 << 15 // exceeds n: includes a rebuild
	pool.Query(r, totalSamples, nil)
	poolIOs := dPool.IOs()

	dNaive := newDev(t, b, m)
	naive, err := NewNaiveSetSampler(dNaive, values)
	if err != nil {
		t.Fatal(err)
	}
	dNaive.ResetStats()
	naive.Query(r, totalSamples, nil)
	naiveIOs := dNaive.IOs()

	if naiveIOs != totalSamples {
		t.Fatalf("naive I/Os = %d, want %d", naiveIOs, totalSamples)
	}
	if poolIOs*4 > naiveIOs {
		t.Fatalf("pool I/Os = %d not ≪ naive %d", poolIOs, naiveIOs)
	}
}

func TestSortedQueryMatchesDistribution(t *testing.T) {
	d := newDev(t, 16, 256)
	const n = 16
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}
	naive, err := NewNaiveSetSampler(d, values)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4)
	const draws = 32000
	counts := make([]int, n)
	out := naive.SortedQuery(r, draws, nil)
	for _, v := range out {
		counts[int(v)]++
	}
	expected := float64(draws) / n
	chi2 := 0.0
	for _, c := range counts {
		diff := float64(c) - expected
		chi2 += diff * diff / expected
	}
	if chi2 > chi2Crit(n-1) {
		t.Fatalf("chi2 = %v", chi2)
	}
}

func TestRangeSamplerEmpty(t *testing.T) {
	d := newDev(t, 8, 64)
	if _, err := NewRangeSampler(d, nil, rng.New(1)); err != ErrEmpty {
		t.Fatalf("err = %v", err)
	}
}

func TestRangeSamplerWithinRangeAndUniform(t *testing.T) {
	d := newDev(t, 8, 128)
	const n = 200
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}
	r := rng.New(5)
	rs, err := NewRangeSampler(d, values, r)
	if err != nil {
		t.Fatal(err)
	}
	// Query cutting partial blocks on both sides and a dyadic interior.
	x, y := 13.0, 177.0
	k := int(y) - int(x) + 1
	const draws = 200000
	counts := make([]int, k)
	out, ok := rs.Query(r, x, y, draws, nil)
	if !ok {
		t.Fatal("query empty")
	}
	if len(out) != draws {
		t.Fatalf("drew %d", len(out))
	}
	for _, v := range out {
		if v < x || v > y {
			t.Fatalf("sample %v outside [%v,%v]", v, x, y)
		}
		counts[int(v)-int(x)]++
	}
	expected := float64(draws) / float64(k)
	chi2 := 0.0
	for _, c := range counts {
		diff := float64(c) - expected
		chi2 += diff * diff / expected
	}
	if chi2 > chi2Crit(k-1) {
		t.Fatalf("chi2 = %v (crit %v)", chi2, chi2Crit(k-1))
	}
}

func TestRangeSamplerSingleBlockQuery(t *testing.T) {
	d := newDev(t, 16, 256)
	const n = 100
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}
	r := rng.New(6)
	rs, err := NewRangeSampler(d, values, r)
	if err != nil {
		t.Fatal(err)
	}
	out, ok := rs.Query(r, 3, 7, 1000, nil)
	if !ok {
		t.Fatal("query empty")
	}
	counts := map[int]int{}
	for _, v := range out {
		if v < 3 || v > 7 {
			t.Fatalf("sample %v outside", v)
		}
		counts[int(v)]++
	}
	if len(counts) != 5 {
		t.Fatalf("hit %d of 5 values", len(counts))
	}
}

func TestRangeSamplerEmptyRanges(t *testing.T) {
	d := newDev(t, 8, 64)
	values := []float64{10, 20, 30}
	r := rng.New(7)
	rs, err := NewRangeSampler(d, values, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range [][2]float64{{-5, 5}, {31, 99}, {21, 29}, {25, 15}} {
		if _, ok := rs.Query(r, q[0], q[1], 3, nil); ok {
			t.Fatalf("query %v returned ok", q)
		}
	}
}

func TestRangeSamplerIOsBeatNaive(t *testing.T) {
	// Large s over a wide range: pool consumption should cost far fewer
	// I/Os than one random access per sample.
	const n = 1 << 14
	b, m := 64, 2048
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}
	r := rng.New(8)
	d := newDev(t, b, m)
	rs, err := NewRangeSampler(d, values, r)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the pools on the query range once.
	const s = 4096
	rs.Query(r, 100, 16000, s, nil)
	d.ResetStats()
	out, ok := rs.Query(r, 100, 16000, s, nil)
	if !ok || len(out) != s {
		t.Fatalf("ok=%v len=%d", ok, len(out))
	}
	// Warm queries should pay ≈ s/B + boundary I/Os, far below s.
	if d.IOs() > int64(s/4) {
		t.Fatalf("warm query I/Os = %d, not ≪ s = %d", d.IOs(), s)
	}
}

func BenchmarkSetSamplerPool(b *testing.B) {
	const n = 1 << 16
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}
	r := rng.New(1)
	d := newDev(b, 256, 4096)
	s, err := NewSetSampler(d, values, r)
	if err != nil {
		b.Fatal(err)
	}
	var dst []float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = s.Query(r, 64, dst[:0])
	}
}

func TestSamplerAccessors(t *testing.T) {
	d := newDev(t, 8, 64)
	values := []float64{1, 2, 3, 4, 5}
	r := rng.New(30)
	s, err := NewSetSampler(d, values, r)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 5 {
		t.Fatalf("SetSampler Len = %d", s.Len())
	}
	rs, err := NewRangeSampler(newDev(t, 8, 64), values, r)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 5 {
		t.Fatalf("RangeSampler Len = %d", rs.Len())
	}
	if _, ok := rs.Query(r, 2, 4, 0, nil); ok {
		t.Fatal("s=0 returned ok")
	}
}
