// Package emiqs implements the external-memory IQS structures of Section
// 8 of the paper on top of the simulated EM model (internal/em):
//
//   - SetSampler: the sample-pool structure for set sampling. It stores
//     the n elements in an array plus a pool of n precomputed WR samples;
//     a query returns the next s clean samples at ~⌈s/B⌉ I/Os and rebuilds
//     the pool in O((n/B)·log_{M/B}(n/B)) I/Os when it runs dry, matching
//     the lower bound of Hu et al. [18] (amortized
//     O((s/B)·log_{M/B}(n/B)) per query, versus O(s) for the naive
//     random-access method).
//
//   - NaiveSetSampler: the comparator that spends one random I/O per
//     sample.
//
//   - RangeSampler: WR range sampling in EM, following the spirit of Hu
//     et al.'s superlinear-space structure: a dyadic hierarchy over the
//     leaf blocks of the sorted array where every node owns a sample pool
//     of its subrange, rebuilt with the sort-based batch sampler. Space
//     O((n/B)·log(n/B)) blocks; a query costs O(log_B n) I/Os to locate
//     the range plus amortized O(1 + s/B·log_{M/B}) to consume pools.
//
// All samplers draw query randomness from the caller's *rng.Source, so
// outputs are independent across queries; pool entries are fresh iid
// samples consumed exactly once.
package emiqs

import (
	"errors"
	"sort"

	"repro/internal/em"
	"repro/internal/rng"
)

// ErrEmpty is returned when building over no elements.
var ErrEmpty = errors.New("emiqs: empty input")

// fillPool writes `count` iid uniform samples of data records
// [lo, hi] (stride-1 values) into pool records [0, count), using the
// sort-based three-pass method so that the cost is O(sort(count) +
// touched-blocks) I/Os rather than `count` random I/Os:
//
//  1. write (randomIndex, slot) pairs sequentially;
//  2. sort by randomIndex; fetch values with a monotone block-buffered
//     reader, emitting (slot, value);
//  3. sort by slot; the values, scanned in slot order, are the iid
//     sample sequence in generation order.
func fillPool(dev *em.Device, data *em.Array, lo, hi int, pool *em.Array, count int, r *rng.Source) {
	span := hi - lo + 1
	t1 := em.NewArray(dev, count, 2)
	{
		w := t1.Write(0)
		for slot := 0; slot < count; slot++ {
			idx := lo + r.Intn(span)
			w.Append([]em.Word{em.Word(idx), em.Word(slot)})
		}
		w.Flush()
	}
	em.Sort(dev, t1)
	t2 := em.NewArray(dev, count, 2)
	{
		sc := t1.Scan(0)
		w := t2.Write(0)
		rd := data.RandomReader()
		rec := make([]em.Word, 2)
		val := make([]em.Word, 1)
		for sc.Next(rec) {
			rd.Get(int(rec[0]), val)
			w.Append([]em.Word{rec[1], val[0]})
		}
		w.Flush()
	}
	em.Sort(dev, t2)
	{
		sc := t2.Scan(0)
		w := pool.Write(0)
		rec := make([]em.Word, 2)
		for sc.Next(rec) {
			w.Append([]em.Word{rec[1]})
		}
		w.Flush()
	}
}

// SetSampler is the Section 8 set-sampling structure.
type SetSampler struct {
	dev  *em.Device
	data *em.Array
	pool *em.Array
	// clean is the cursor of the next unused pool entry. Keeping the
	// cursor in memory costs O(1) words, within the model's budget.
	clean    int
	rebuilds int
}

// NewSetSampler stores values on the device and builds the first pool.
func NewSetSampler(dev *em.Device, values []float64, r *rng.Source) (*SetSampler, error) {
	n := len(values)
	if n == 0 {
		return nil, ErrEmpty
	}
	s := &SetSampler{dev: dev}
	s.data = em.NewArray(dev, n, 1)
	w := s.data.Write(0)
	for _, v := range values {
		w.Append([]em.Word{v})
	}
	w.Flush()
	s.pool = em.NewArray(dev, n, 1)
	fillPool(dev, s.data, 0, n-1, s.pool, n, r)
	return s, nil
}

// Len returns n.
func (s *SetSampler) Len() int { return s.data.Len() }

// Rebuilds returns how many pool rebuilds have occurred (diagnostic).
func (s *SetSampler) Rebuilds() int { return s.rebuilds }

// Query appends `count` independent WR samples of the whole set to dst.
// Amortized cost O(1 + (count/B)·log_{M/B}(n/B)) I/Os.
func (s *SetSampler) Query(r *rng.Source, count int, dst []float64) []float64 {
	rec := make([]em.Word, 1)
	for count > 0 {
		if s.clean >= s.pool.Len() {
			fillPool(s.dev, s.data, 0, s.data.Len()-1, s.pool, s.pool.Len(), r)
			s.clean = 0
			s.rebuilds++
		}
		sc := s.pool.Scan(s.clean)
		for count > 0 && s.clean < s.pool.Len() {
			if !sc.Next(rec) {
				break
			}
			dst = append(dst, rec[0])
			s.clean++
			count--
		}
	}
	return dst
}

// NaiveSetSampler answers set-sampling queries by one random I/O per
// sample — the approach the paper calls "terrible" in EM.
type NaiveSetSampler struct {
	data *em.Array
	mem  int
}

// NewNaiveSetSampler stores values on the device.
func NewNaiveSetSampler(dev *em.Device, values []float64) (*NaiveSetSampler, error) {
	if len(values) == 0 {
		return nil, ErrEmpty
	}
	s := &NaiveSetSampler{data: em.NewArray(dev, len(values), 1), mem: dev.M()}
	w := s.data.Write(0)
	for _, v := range values {
		w.Append([]em.Word{v})
	}
	w.Flush()
	return s, nil
}

// Query appends `count` independent WR samples at one I/O each.
func (s *NaiveSetSampler) Query(r *rng.Source, count int, dst []float64) []float64 {
	rec := make([]em.Word, 1)
	for i := 0; i < count; i++ {
		s.data.Get(r.Intn(s.data.Len()), rec)
		dst = append(dst, rec[0])
	}
	return dst
}

// SortedQuery appends `count` independent WR samples using the batched
// sorted-position trick without a pool: generate a memory-full of
// positions, sort them in RAM, read the touched blocks monotonically,
// repeat. Per batch of m ≈ M/2 samples the cost is min(m, n/B) block
// reads, so the total is ⌈count/m⌉·min(m, n/B) I/Os — the de-amortized
// middle ground between the naive sampler (one I/O per sample) and the
// pool (sorting bound amortized): its worst-case per-query cost is
// bounded without any shared pool state. (Used by E10.)
func (s *NaiveSetSampler) SortedQuery(r *rng.Source, count int, dst []float64) []float64 {
	batch := s.mem / 2
	if batch < 1 {
		batch = 1
	}
	rec := make([]em.Word, 1)
	for count > 0 {
		m := count
		if m > batch {
			m = batch
		}
		pos := make([]int, m)
		for i := range pos {
			pos[i] = r.Intn(s.data.Len())
		}
		order := make([]int, m)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return pos[order[a]] < pos[order[b]] })
		vals := make([]float64, m)
		rd := s.data.RandomReader()
		for _, oi := range order {
			rd.Get(pos[oi], rec)
			vals[oi] = rec[0]
		}
		dst = append(dst, vals...)
		count -= m
	}
	return dst
}
