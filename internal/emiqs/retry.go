package emiqs

import (
	"context"

	"repro/internal/em"
	"repro/internal/rng"
)

// Fault-tolerant query paths. When the backing Device has a FaultPolicy
// installed, block I/Os deep inside scans and pool refills surface as
// *em.FaultError panics. The *Retry entry points contain those panics at
// the query boundary and re-run the whole operation under the caller's
// bounded exponential-backoff policy.
//
// Retrying a whole query after a mid-flight fault is distributionally
// harmless: pool entries are iid precomputed samples consumed at most
// once, so a retry that skips the entries a failed attempt already
// consumed draws from the same distribution, and every completed query
// still returns s iid samples of its range.

// QueryRetry is Query with bounded retry + exponential backoff against
// injected transient faults. It appends s samples to dst on success; ok
// is false when the range is empty. After rp.MaxAttempts faulted
// attempts the last fault is returned (errors.Is(err, em.ErrFault)).
func (rs *RangeSampler) QueryRetry(r *rng.Source, x, y float64, s int, dst []float64, rp em.RetryPolicy) ([]float64, bool, error) {
	return rs.QueryRetryContext(context.Background(), r, x, y, s, dst, rp)
}

// QueryRetryContext is QueryRetry with cancellation-aware backoff: the
// retry sleeps wake on ctx.Done() and a cancelled context stops
// retrying instead of sleeping out the full schedule.
func (rs *RangeSampler) QueryRetryContext(ctx context.Context, r *rng.Source, x, y float64, s int, dst []float64, rp em.RetryPolicy) ([]float64, bool, error) {
	var (
		out []float64
		ok  bool
	)
	err := em.WithRetryContext(ctx, rp, func() error {
		return em.CatchFault(func() { out, ok = rs.Query(r, x, y, s, dst) })
	})
	if err != nil {
		return dst, false, err
	}
	return out, ok, nil
}

// QueryRetry is SetSampler.Query with bounded retry + exponential
// backoff against injected transient faults.
func (s *SetSampler) QueryRetry(r *rng.Source, count int, dst []float64, rp em.RetryPolicy) ([]float64, error) {
	return s.QueryRetryContext(context.Background(), r, count, dst, rp)
}

// QueryRetryContext is SetSampler.QueryRetry with cancellation-aware
// backoff.
func (s *SetSampler) QueryRetryContext(ctx context.Context, r *rng.Source, count int, dst []float64, rp em.RetryPolicy) ([]float64, error) {
	var out []float64
	err := em.WithRetryContext(ctx, rp, func() error {
		return em.CatchFault(func() { out = s.Query(r, count, dst) })
	})
	if err != nil {
		return dst, err
	}
	return out, nil
}
