package emiqs

import (
	"math"

	"repro/internal/em"
	"repro/internal/rng"
)

// RangeSampler answers WR range-sampling queries (uniform weights, the
// scenario of Hu et al. [18] as discussed in the paper's Section 8) in
// the EM model.
//
// Layout: the values are sorted into an EM array of nb blocks. A fence
// array (one minimum per block) supports B-ary search in O(log_B n)
// I/Os. Above the blocks sits a dyadic hierarchy: node (ℓ, i) covers
// blocks [i·2^ℓ, (i+1)·2^ℓ) for ℓ ≥ 1, and owns a sample pool holding as
// many precomputed WR samples of its key range as it has elements,
// filled lazily with the sort-based batch sampler and consumed at
// ⌈s/B⌉-ish I/Os per visit. Space is O((n/B)·log(n/B)) blocks — the
// superlinear-space regime of Hu et al.'s first structure.
//
// A query splits S ∩ q into a partial head block, a dyadic cover of the
// full interior blocks, and a partial tail block; distributes the s
// samples multinomially by element counts (CPU is free in the model);
// reads each partial block once; and consumes pool entries for the
// interior. Amortized query cost: O(log_B n + min(s, log(n/B)) +
// (s/B)·log_{M/B}(n/B)) I/Os, versus O(s) for per-sample random access.
//
// Model note: the pool cursors (O(n/B) words) are kept memory-resident;
// storing them on disk would add at most two I/Os per touched node and
// does not change any experiment's shape.
type RangeSampler struct {
	dev    *em.Device
	data   *em.Array // sorted values, stride 1
	fences []float64 // in-memory copy used only to *build* the EM fence array
	fenceA *em.Array
	perBlk int
	nb     int // data blocks
	n      int

	// Dyadic pools: level ℓ ≥ 1, index i covers blocks
	// [i·2^ℓ, min(nb, (i+1)·2^ℓ)).
	levels []dyLevel
}

type dyLevel struct {
	pools   []*em.Array
	cursors []int
}

// NewRangeSampler sorts values onto the device and builds the hierarchy
// (pools fill lazily on first use).
func NewRangeSampler(dev *em.Device, values []float64, r *rng.Source) (*RangeSampler, error) {
	n := len(values)
	if n == 0 {
		return nil, ErrEmpty
	}
	rs := &RangeSampler{dev: dev, n: n}
	rs.data = em.NewArray(dev, n, 1)
	w := rs.data.Write(0)
	for _, v := range values {
		w.Append([]em.Word{v})
	}
	w.Flush()
	em.Sort(dev, rs.data)
	rs.perBlk = dev.B() // stride 1
	rs.nb = (n + rs.perBlk - 1) / rs.perBlk

	// Fence array: one minimum per block.
	rs.fenceA = em.NewArray(dev, rs.nb, 1)
	{
		sc := rs.data.Scan(0)
		fw := rs.fenceA.Write(0)
		rec := make([]em.Word, 1)
		i := 0
		for sc.Next(rec) {
			if i%rs.perBlk == 0 {
				fw.Append([]em.Word{rec[0]})
			}
			i++
		}
		fw.Flush()
	}

	// Dyadic levels (lazy pools: cursor starts at pool length).
	for l := 1; (1 << l) <= rs.nb; l++ {
		width := 1 << l
		cnt := (rs.nb + width - 1) / width
		lv := dyLevel{
			pools:   make([]*em.Array, cnt),
			cursors: make([]int, cnt),
		}
		for i := 0; i < cnt; i++ {
			lo, hi := rs.nodeElemRange(l, i)
			m := hi - lo + 1
			lv.pools[i] = em.NewArray(dev, m, 1)
			lv.cursors[i] = m // empty: forces a fill on first use
		}
		rs.levels = append(rs.levels, lv)
	}
	return rs, nil
}

// nodeElemRange returns the element-position range [lo, hi] of dyadic
// node (level, i).
func (rs *RangeSampler) nodeElemRange(level, i int) (lo, hi int) {
	width := 1 << level
	bLo := i * width
	bHi := bLo + width - 1
	if bHi >= rs.nb {
		bHi = rs.nb - 1
	}
	lo = bLo * rs.perBlk
	hi = (bHi+1)*rs.perBlk - 1
	if hi >= rs.n {
		hi = rs.n - 1
	}
	return lo, hi
}

// Len returns n.
func (rs *RangeSampler) Len() int { return rs.n }

// fenceSearch returns the last block whose fence is ≤ x (or -1), using
// B-ary search over the fence array: O(log_B nb) I/Os.
func (rs *RangeSampler) fenceSearch(x float64) int {
	lo, hi := 0, rs.nb-1
	rd := rs.fenceA.RandomReader()
	rec := make([]em.Word, 1)
	// Check the first fence.
	rd.Get(0, rec)
	if rec[0] > x {
		return -1
	}
	// B-ary narrowing: probe B evenly spaced fences per round. Probes in
	// one round are ascending, so distinct blocks cost ≤ B()/probe I/Os;
	// the round count is O(log_B nb).
	for hi > lo {
		if hi-lo+1 <= rs.dev.B() {
			// Final round: linear within one or two fence blocks.
			best := lo
			for j := lo; j <= hi; j++ {
				rd.Get(j, rec)
				if rec[0] <= x {
					best = j
				} else {
					break
				}
			}
			return best
		}
		step := (hi - lo) / rs.dev.B()
		if step < 1 {
			step = 1
		}
		best := lo
		for j := lo; j <= hi; j += step {
			rd.Get(j, rec)
			if rec[0] <= x {
				best = j
			} else {
				break
			}
		}
		lo = best
		if best+step < hi {
			hi = best + step
		}
	}
	return lo
}

// blockOfValue locates the exact position range of values in [x, y]
// inside block b (reading the block once). Returns positions relative to
// the whole array.
func (rs *RangeSampler) scanBlock(b int, x, y float64) (lo, hi int, vals []float64) {
	start := b * rs.perBlk
	end := start + rs.perBlk - 1
	if end >= rs.n {
		end = rs.n - 1
	}
	sc := rs.data.Scan(start)
	rec := make([]em.Word, 1)
	lo, hi = -1, -2
	for p := start; p <= end && sc.Next(rec); p++ {
		vals = append(vals, rec[0])
		if rec[0] >= x && rec[0] <= y {
			if lo < 0 {
				lo = p
			}
			hi = p
		}
	}
	return lo, hi, vals
}

// Query appends `s` independent uniform samples of S ∩ [x, y] to dst.
// ok is false when the range is empty.
func (rs *RangeSampler) Query(r *rng.Source, x, y float64, s int, dst []float64) ([]float64, bool) {
	if y < x || s <= 0 {
		return dst, false
	}
	// Locate boundary blocks.
	ba := rs.fenceSearch(x)
	if ba < 0 {
		ba = 0
	}
	bb := rs.fenceSearch(y)
	if bb < 0 {
		return dst, false // y below the first value
	}
	aPos, aHi, aVals := rs.scanBlock(ba, x, y)
	if ba == bb {
		if aPos < 0 {
			return dst, false
		}
		// Whole query inside one block: sample in memory.
		span := aHi - aPos + 1
		base := ba * rs.perBlk
		for i := 0; i < s; i++ {
			dst = append(dst, aVals[aPos-base+r.Intn(span)])
		}
		return dst, true
	}
	bPos, bHi, bVals := rs.scanBlock(bb, x, y)

	// Pieces: head partial (positions aPos..end of block ba), interior
	// full blocks (ba+1..bb-1) decomposed dyadically, tail partial.
	type piece struct {
		count    int
		kind     int // 0 head, 1 tail, 2 dyadic
		level, i int // dyadic node
	}
	var pieces []piece
	headEnd := (ba+1)*rs.perBlk - 1
	if headEnd >= rs.n {
		headEnd = rs.n - 1
	}
	if aPos >= 0 {
		pieces = append(pieces, piece{count: headEnd - aPos + 1, kind: 0})
	}
	if bPos >= 0 {
		tailStart := bb * rs.perBlk
		pieces = append(pieces, piece{count: bHi - tailStart + 1, kind: 1})
	}
	// Dyadic cover of [ba+1, bb-1].
	for lo := ba + 1; lo <= bb-1; {
		// Largest aligned width fitting in [lo, bb-1].
		level := 0
		for (lo&((1<<(level+1))-1)) == 0 && lo+(1<<(level+1))-1 <= bb-1 && (1<<(level+1)) <= rs.nb {
			level++
		}
		width := 1 << level
		if level == 0 {
			// Single full block: treat as its own piece (read directly).
			pieces = append(pieces, piece{count: rs.blockCount(lo), kind: 3, i: lo})
			lo++
			continue
		}
		i := lo / width
		eLo, eHi := rs.nodeElemRange(level, i)
		pieces = append(pieces, piece{count: eHi - eLo + 1, kind: 2, level: level, i: i})
		lo += width
	}
	if len(pieces) == 0 {
		return dst, false
	}
	weights := make([]float64, len(pieces))
	for i, p := range pieces {
		weights[i] = float64(p.count)
	}
	counts, err := rng.Multinomial(r, s, weights)
	if err != nil {
		// Piece counts are positive by construction; a failure here is a
		// broken invariant, not an input error.
		panic(err)
	}

	for pi, cnt := range counts {
		if cnt == 0 {
			continue
		}
		p := pieces[pi]
		switch p.kind {
		case 0: // head partial, block already in memory
			base := ba * rs.perBlk
			span := headEnd - aPos + 1
			for i := 0; i < cnt; i++ {
				dst = append(dst, aVals[aPos-base+r.Intn(span)])
			}
		case 1: // tail partial
			base := bb * rs.perBlk
			span := bHi - base + 1
			for i := 0; i < cnt; i++ {
				dst = append(dst, bVals[r.Intn(span)])
			}
		case 3: // single full block: one read, sample in memory
			_, _, vals := rs.scanBlock(p.i, math.Inf(-1), math.Inf(1))
			for i := 0; i < cnt; i++ {
				dst = append(dst, vals[r.Intn(len(vals))])
			}
		case 2: // dyadic node: consume pool
			dst = rs.consumePool(r, p.level, p.i, cnt, dst)
		}
	}
	return dst, true
}

// blockCount returns the number of records in block b.
func (rs *RangeSampler) blockCount(b int) int {
	start := b * rs.perBlk
	end := start + rs.perBlk
	if end > rs.n {
		end = rs.n
	}
	return end - start
}

// consumePool draws cnt samples from the pool of dyadic node (level, i),
// refilling it (lazily) when exhausted.
func (rs *RangeSampler) consumePool(r *rng.Source, level, i, cnt int, dst []float64) []float64 {
	lv := &rs.levels[level-1]
	pool := lv.pools[i]
	rec := make([]em.Word, 1)
	for cnt > 0 {
		if lv.cursors[i] >= pool.Len() {
			eLo, eHi := rs.nodeElemRange(level, i)
			fillPool(rs.dev, rs.data, eLo, eHi, pool, pool.Len(), r)
			lv.cursors[i] = 0
		}
		sc := pool.Scan(lv.cursors[i])
		for cnt > 0 && lv.cursors[i] < pool.Len() {
			if !sc.Next(rec) {
				break
			}
			dst = append(dst, rec[0])
			lv.cursors[i]++
			cnt--
		}
	}
	return dst
}
