package stats

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestChiSquareErrors(t *testing.T) {
	if _, err := ChiSquare(nil, nil); err != ErrBadInput {
		t.Fatalf("err = %v", err)
	}
	if _, err := ChiSquare([]int{1}, []float64{1, 2}); err != ErrBadInput {
		t.Fatalf("err = %v", err)
	}
	if _, err := ChiSquare([]int{1}, []float64{0}); err != ErrBadInput {
		t.Fatalf("err = %v", err)
	}
	if _, err := ChiSquareUniform(nil); err != ErrBadInput {
		t.Fatalf("err = %v", err)
	}
	if _, err := ChiSquareUniform([]int{0, 0}); err != ErrBadInput {
		t.Fatalf("err = %v", err)
	}
}

func TestChiSquareExact(t *testing.T) {
	// Observed exactly equals expected → statistic 0.
	got, err := ChiSquare([]int{10, 20, 30}, []float64{10, 20, 30})
	if err != nil || got != 0 {
		t.Fatalf("got %v err %v", got, err)
	}
	// Hand-computed case.
	got, err = ChiSquare([]int{12, 8}, []float64{10, 10})
	if err != nil || math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("got %v", got)
	}
}

func TestChiSquareCriticalKnownValues(t *testing.T) {
	// Compare against table values (to a few percent).
	cases := []struct {
		dof   int
		alpha float64
		want  float64
	}{
		{1, 0.05, 3.841},
		{5, 0.05, 11.07},
		{10, 0.05, 18.31},
		{10, 0.01, 23.21},
		{30, 0.05, 43.77},
	}
	for _, c := range cases {
		got := ChiSquareCritical(c.dof, c.alpha)
		if math.Abs(got-c.want)/c.want > 0.05 {
			t.Fatalf("crit(%d, %v) = %v, want ~%v", c.dof, c.alpha, got, c.want)
		}
	}
	if got := ChiSquareCritical(0, 0.05); got != 0 {
		t.Fatalf("crit(0) = %v", got)
	}
}

func TestNormalQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.025, -1.959964},
		{0.9999, 3.719},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); math.Abs(got-c.want) > 0.01 {
			t.Fatalf("quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Fatal("boundary quantiles not infinite")
	}
}

func TestKSUniform(t *testing.T) {
	if _, err := KSUniform(nil); err != ErrBadInput {
		t.Fatalf("err = %v", err)
	}
	if _, err := KSUniform([]float64{2}); err != ErrBadInput {
		t.Fatalf("out-of-range err = %v", err)
	}
	// Uniform sample should have small KS distance.
	r := rng.New(1)
	const n = 10000
	sample := make([]float64, n)
	for i := range sample {
		sample[i] = r.Float64()
	}
	d, err := KSUniform(sample)
	if err != nil {
		t.Fatal(err)
	}
	// Critical value at alpha=0.001 is ~1.95/sqrt(n).
	if d > 1.95/math.Sqrt(n) {
		t.Fatalf("KS = %v too large for uniform data", d)
	}
	// A clearly non-uniform sample must have large distance.
	for i := range sample {
		sample[i] = r.Float64() * 0.5
	}
	d, err = KSUniform(sample)
	if err != nil {
		t.Fatal(err)
	}
	if d < 0.4 {
		t.Fatalf("KS = %v too small for half-range data", d)
	}
}

func TestSampleSizeForEstimate(t *testing.T) {
	// ε=0.05, δ=0.1: Hoeffding gives ln(20)/(2·0.0025) ≈ 600.
	got := SampleSizeForEstimate(0.05, 0.1)
	if got < 500 || got > 700 {
		t.Fatalf("sample size = %d", got)
	}
	if got := SampleSizeForEstimate(0, 0.5); got != 1 {
		t.Fatalf("invalid eps gave %d", got)
	}
}

func TestEstimationGuaranteeEndToEnd(t *testing.T) {
	// The Benefit-1 pipeline: estimate a proportion from independent
	// samples; error must be within ε with frequency ≥ 1−δ.
	r := rng.New(7)
	const eps, delta = 0.05, 0.1
	sSize := SampleSizeForEstimate(eps, delta)
	trueP := 0.37
	fails := 0
	const trials = 400
	for trial := 0; trial < trials; trial++ {
		samples := make([]int, sSize)
		for i := range samples {
			if r.Bernoulli(trueP) {
				samples[i] = 1
			}
		}
		est := Proportion(samples, func(v int) bool { return v == 1 })
		if math.Abs(est-trueP) > eps {
			fails++
		}
	}
	// Hoeffding guarantees ≤ δ·trials = 40 expected failures; allow 2x.
	if fails > 80 {
		t.Fatalf("estimation failed %d/%d times", fails, trials)
	}
}

func TestBinomialTailBound(t *testing.T) {
	if got := BinomialTailBound(0, 0.5, 1); got != 1 {
		t.Fatalf("degenerate bound = %v", got)
	}
	b1 := BinomialTailBound(100, 0.5, 10)
	b2 := BinomialTailBound(100, 0.5, 30)
	if !(b2 < b1 && b1 < 1) {
		t.Fatalf("bounds not decreasing: %v, %v", b1, b2)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Fatalf("empty summary %+v", s)
	}
	s = Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.Variance-5.0/3) > 1e-12 {
		t.Fatalf("variance %v", s.Variance)
	}
}

func TestProportion(t *testing.T) {
	if got := Proportion(nil, func(int) bool { return true }); got != 0 {
		t.Fatalf("empty proportion %v", got)
	}
	got := Proportion([]int{1, 2, 3, 4}, func(v int) bool { return v%2 == 0 })
	if got != 0.5 {
		t.Fatalf("proportion %v", got)
	}
}
