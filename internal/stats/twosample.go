package stats

import "math"

// Two-sample tests. The one-sample machinery in stats.go compares an
// empirical distribution against a *known* reference (uniform, or
// explicit expected counts). The differential fuzzer in internal/soak
// instead compares two *empirical* samples — the structure under test
// against the naive oracle — where neither side is the ground truth.
// These helpers provide the sample-vs-sample analogues.

// ChiSquareTwoSample returns the two-sample chi-square homogeneity
// statistic for two count vectors over the same cells, plus the degrees
// of freedom. Cells where both counts are zero are skipped (they carry
// no information and would divide by zero); dof is the number of
// contributing cells minus one.
//
// With totals N1 = Σa and N2 = Σb the statistic is
//
//	Σ_i ( a_i·√(N2/N1) − b_i·√(N1/N2) )² / (a_i + b_i)
//
// which under H0 (both samples drawn from the same distribution) is
// asymptotically chi-square with dof degrees of freedom [Press et al.,
// Numerical Recipes §14.3].
func ChiSquareTwoSample(a, b []int) (stat float64, dof int, err error) {
	if len(a) != len(b) || len(a) == 0 {
		return 0, 0, ErrBadInput
	}
	var n1, n2 float64
	for i := range a {
		if a[i] < 0 || b[i] < 0 {
			return 0, 0, ErrBadInput
		}
		n1 += float64(a[i])
		n2 += float64(b[i])
	}
	if n1 == 0 || n2 == 0 {
		return 0, 0, ErrBadInput
	}
	r1, r2 := math.Sqrt(n2/n1), math.Sqrt(n1/n2)
	cells := 0
	for i := range a {
		ai, bi := float64(a[i]), float64(b[i])
		if ai == 0 && bi == 0 {
			continue
		}
		cells++
		d := ai*r1 - bi*r2
		stat += d * d / (ai + bi)
	}
	if cells < 2 {
		return 0, 0, ErrBadInput
	}
	return stat, cells - 1, nil
}

// KSTwoSample returns the two-sample Kolmogorov–Smirnov statistic
// sup_x |F1(x) − F2(x)| between the empirical CDFs of x and y.
func KSTwoSample(x, y []float64) (float64, error) {
	if len(x) == 0 || len(y) == 0 {
		return 0, ErrBadInput
	}
	xs := append([]float64(nil), x...)
	ys := append([]float64(nil), y...)
	sortFloat64s(xs)
	sortFloat64s(ys)
	nx, ny := float64(len(xs)), float64(len(ys))
	var i, j int
	maxD := 0.0
	for i < len(xs) && j < len(ys) {
		// Advance past ties in lockstep so the CDF gap is evaluated
		// only at points where both step counts are settled.
		v := math.Min(xs[i], ys[j])
		for i < len(xs) && xs[i] == v {
			i++
		}
		for j < len(ys) && ys[j] == v {
			j++
		}
		d := math.Abs(float64(i)/nx - float64(j)/ny)
		if d > maxD {
			maxD = d
		}
	}
	return maxD, nil
}

// KSCritical returns the asymptotic one-sample KS critical value at
// upper-tail probability alpha for a sample of size n:
// c(α)/√n with c(α) = √(−ln(α/2)/2).
func KSCritical(n int, alpha float64) float64 {
	if n <= 0 || alpha <= 0 || alpha >= 1 {
		return math.Inf(1)
	}
	return ksC(alpha) / math.Sqrt(float64(n))
}

// KSTwoSampleCritical returns the asymptotic two-sample KS critical
// value at upper-tail probability alpha for sample sizes n and m:
// c(α)·√((n+m)/(n·m)).
func KSTwoSampleCritical(n, m int, alpha float64) float64 {
	if n <= 0 || m <= 0 || alpha <= 0 || alpha >= 1 {
		return math.Inf(1)
	}
	return ksC(alpha) * math.Sqrt(float64(n+m)/(float64(n)*float64(m)))
}

// ksC is the KS scaling coefficient c(α) = √(−ln(α/2)/2); c(0.05) ≈
// 1.358, c(0.01) ≈ 1.628.
func ksC(alpha float64) float64 {
	return math.Sqrt(-math.Log(alpha/2) / 2)
}
