package stats

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestChiSquareTwoSampleErrors(t *testing.T) {
	cases := []struct {
		name string
		a, b []int
	}{
		{"empty", nil, nil},
		{"mismatch", []int{1, 2}, []int{1}},
		{"negative", []int{-1, 2}, []int{1, 2}},
		{"one side zero", []int{0, 0}, []int{3, 4}},
		{"single live cell", []int{5, 0}, []int{7, 0}},
	}
	for _, tc := range cases {
		if _, _, err := ChiSquareTwoSample(tc.a, tc.b); err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
		}
	}
}

func TestChiSquareTwoSampleIdenticalCounts(t *testing.T) {
	a := []int{10, 20, 30, 40}
	stat, dof, err := ChiSquareTwoSample(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if stat != 0 {
		t.Errorf("identical counts: stat = %v, want 0", stat)
	}
	if dof != 3 {
		t.Errorf("dof = %d, want 3", dof)
	}
}

func TestChiSquareTwoSampleSkipsEmptyCells(t *testing.T) {
	a := []int{10, 0, 30}
	b := []int{12, 0, 28}
	_, dof, err := ChiSquareTwoSample(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if dof != 1 {
		t.Errorf("dof = %d, want 1 (dead cell skipped)", dof)
	}
}

// TestChiSquareTwoSampleKnownValue checks the statistic against a
// hand-computed 2×2 homogeneity table. For a = (30, 70), b = (50, 50)
// the classic contingency-table statistic is
// N(ad−bc)²/((a+b)(c+d)(a+c)(b+d)) = 200·(1500−3500)²/(80·120·100·100)
// = 8.3333..., and the Numerical Recipes form used here is identical.
func TestChiSquareTwoSampleKnownValue(t *testing.T) {
	stat, dof, err := ChiSquareTwoSample([]int{30, 70}, []int{50, 50})
	if err != nil {
		t.Fatal(err)
	}
	if dof != 1 {
		t.Fatalf("dof = %d, want 1", dof)
	}
	want := 200.0 * 2000 * 2000 / (80.0 * 120 * 100 * 100)
	if math.Abs(stat-want) > 1e-9 {
		t.Errorf("stat = %v, want %v", stat, want)
	}
}

// TestChiSquareTwoSampleCalibration: counts drawn from the same
// multinomial stay under the 1% critical value, counts from a visibly
// different distribution blow past it.
func TestChiSquareTwoSampleCalibration(t *testing.T) {
	r := rng.New(42)
	const cells, draws = 8, 20000
	sample := func(p []float64) []int {
		c := make([]int, cells)
		for i := 0; i < draws; i++ {
			u := r.Float64()
			acc := 0.0
			for j, pj := range p {
				acc += pj
				if u < acc || j == cells-1 {
					c[j]++
					break
				}
			}
		}
		return c
	}
	uni := make([]float64, cells)
	for i := range uni {
		uni[i] = 1.0 / cells
	}
	skew := make([]float64, cells)
	for i := range skew {
		skew[i] = 1.0 / cells
	}
	skew[0], skew[1] = skew[0]*1.3, skew[1]*0.7

	stat, dof, err := ChiSquareTwoSample(sample(uni), sample(uni))
	if err != nil {
		t.Fatal(err)
	}
	if crit := ChiSquareCritical(dof, 0.01); stat > crit {
		t.Errorf("same-distribution stat %v exceeds crit %v", stat, crit)
	}
	stat, dof, err = ChiSquareTwoSample(sample(uni), sample(skew))
	if err != nil {
		t.Fatal(err)
	}
	if crit := ChiSquareCritical(dof, 0.01); stat < crit {
		t.Errorf("skewed-distribution stat %v under crit %v", stat, crit)
	}
}

func TestKSTwoSampleErrors(t *testing.T) {
	if _, err := KSTwoSample(nil, []float64{1}); err == nil {
		t.Error("empty x: want error")
	}
	if _, err := KSTwoSample([]float64{1}, nil); err == nil {
		t.Error("empty y: want error")
	}
}

func TestKSTwoSampleExact(t *testing.T) {
	cases := []struct {
		name string
		x, y []float64
		want float64
	}{
		{"identical", []float64{1, 2, 3}, []float64{1, 2, 3}, 0},
		{"disjoint", []float64{0, 1, 2}, []float64{10, 11, 12}, 1},
		{"interleaved", []float64{1, 3}, []float64{2, 4}, 0.5},
		{"ties", []float64{1, 1, 2}, []float64{1, 2, 2}, 1.0 / 3},
	}
	for _, tc := range cases {
		d, err := KSTwoSample(tc.x, tc.y)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if math.Abs(d-tc.want) > 1e-12 {
			t.Errorf("%s: D = %v, want %v", tc.name, d, tc.want)
		}
	}
}

// TestKSCriticalTable pins the critical values against the standard
// asymptotic table: c(0.10) = 1.224, c(0.05) = 1.358, c(0.01) = 1.628.
func TestKSCriticalTable(t *testing.T) {
	cases := []struct {
		alpha float64
		c     float64
	}{
		{0.10, 1.224},
		{0.05, 1.358},
		{0.01, 1.628},
	}
	for _, tc := range cases {
		if got := KSCritical(100, tc.alpha) * 10; math.Abs(got-tc.c) > 5e-3 {
			t.Errorf("KSCritical(100, %v)·√100 = %v, want ≈ %v", tc.alpha, got, tc.c)
		}
		// Two-sample with equal sizes n = m: c(α)·√(2/n).
		want := tc.c * math.Sqrt(2.0/100)
		if got := KSTwoSampleCritical(100, 100, tc.alpha); math.Abs(got-want) > 5e-4 {
			t.Errorf("KSTwoSampleCritical(100, 100, %v) = %v, want ≈ %v", tc.alpha, got, want)
		}
	}
	if !math.IsInf(KSCritical(0, 0.05), 1) || !math.IsInf(KSTwoSampleCritical(3, 0, 0.05), 1) {
		t.Error("degenerate sizes must yield +Inf (never reject)")
	}
}

// TestKSTwoSampleCalibration mirrors the chi-square calibration: same
// distribution stays under the critical value, shifted distribution
// exceeds it.
func TestKSTwoSampleCalibration(t *testing.T) {
	r := rng.New(7)
	const n = 4000
	draw := func(shift float64) []float64 {
		s := make([]float64, n)
		for i := range s {
			s[i] = r.Float64() + shift
		}
		return s
	}
	d, err := KSTwoSample(draw(0), draw(0))
	if err != nil {
		t.Fatal(err)
	}
	if crit := KSTwoSampleCritical(n, n, 0.01); d > crit {
		t.Errorf("same-distribution D %v exceeds crit %v", d, crit)
	}
	d, err = KSTwoSample(draw(0), draw(0.08))
	if err != nil {
		t.Fatal(err)
	}
	if crit := KSTwoSampleCritical(n, n, 0.01); d < crit {
		t.Errorf("shifted-distribution D %v under crit %v", d, crit)
	}
}
