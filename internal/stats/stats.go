// Package stats provides the statistical machinery used to *verify* the
// IQS structures and to run the paper's Section 2 experiments: chi-square
// goodness-of-fit tests, Kolmogorov–Smirnov distance, binomial tails, and
// the ε–δ estimation harness of Benefit 1 (selectivity estimation from
// random samples).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrBadInput is returned on dimension mismatches or empty inputs.
var ErrBadInput = errors.New("stats: bad input")

// ChiSquare returns the chi-square statistic of observed counts against
// expected counts (which must be positive and of equal length).
func ChiSquare(observed []int, expected []float64) (float64, error) {
	if len(observed) != len(expected) || len(observed) == 0 {
		return 0, ErrBadInput
	}
	stat := 0.0
	for i, o := range observed {
		e := expected[i]
		if !(e > 0) {
			return 0, ErrBadInput
		}
		d := float64(o) - e
		stat += d * d / e
	}
	return stat, nil
}

// ChiSquareUniform tests observed counts against the uniform
// distribution over len(observed) cells.
func ChiSquareUniform(observed []int) (float64, error) {
	if len(observed) == 0 {
		return 0, ErrBadInput
	}
	total := 0
	for _, o := range observed {
		total += o
	}
	if total == 0 {
		return 0, ErrBadInput
	}
	expected := make([]float64, len(observed))
	for i := range expected {
		expected[i] = float64(total) / float64(len(observed))
	}
	return ChiSquare(observed, expected)
}

// ChiSquareCritical returns the approximate critical value of the
// chi-square distribution with dof degrees of freedom at the given
// upper-tail probability alpha (Wilson–Hilferty approximation; accurate
// to a few percent for dof ≥ 3, adequate for pass/fail testing).
func ChiSquareCritical(dof int, alpha float64) float64 {
	if dof < 1 {
		return 0
	}
	z := normalQuantile(1 - alpha)
	d := float64(dof)
	x := 1 - 2/(9*d) + z*math.Sqrt(2/(9*d))
	return d * x * x * x
}

// normalQuantile returns Φ⁻¹(p) (Acklam's rational approximation,
// |ε| < 1.15e-9).
func normalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		if p <= 0 {
			return math.Inf(-1)
		}
		return math.Inf(1)
	}
	a := []float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := []float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := []float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := []float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// NormalQuantile exposes Φ⁻¹ for harness code.
func NormalQuantile(p float64) float64 { return normalQuantile(p) }

// KSUniform returns the Kolmogorov–Smirnov distance between the sample
// (values in [0,1]) and the uniform distribution.
func KSUniform(sample []float64) (float64, error) {
	if len(sample) == 0 {
		return 0, ErrBadInput
	}
	s := append([]float64(nil), sample...)
	sortFloat64s(s)
	n := float64(len(s))
	maxD := 0.0
	for i, v := range s {
		if v < 0 || v > 1 {
			return 0, ErrBadInput
		}
		d1 := math.Abs(float64(i+1)/n - v)
		d2 := math.Abs(v - float64(i)/n)
		if d1 > maxD {
			maxD = d1
		}
		if d2 > maxD {
			maxD = d2
		}
	}
	return maxD, nil
}

// BinomialTailBound returns the Chernoff–Hoeffding upper bound on
// P(|X − np| ≥ t) for X ~ Binomial(n, p).
func BinomialTailBound(n int, p, t float64) float64 {
	if n <= 0 || t <= 0 {
		return 1
	}
	return 2 * math.Exp(-2*t*t/float64(n))
}

// SampleSizeForEstimate returns the number of independent samples needed
// to estimate a proportion within absolute error eps with probability at
// least 1−delta (the paper's folklore O((1/ε²)·log(1/δ)) bound, with the
// Hoeffding constant).
func SampleSizeForEstimate(eps, delta float64) int {
	if eps <= 0 || delta <= 0 || delta >= 1 {
		return 1
	}
	return int(math.Ceil(math.Log(2/delta) / (2 * eps * eps)))
}

// Proportion returns the fraction of samples for which pred holds.
func Proportion(samples []int, pred func(int) bool) float64 {
	if len(samples) == 0 {
		return 0
	}
	c := 0
	for _, s := range samples {
		if pred(s) {
			c++
		}
	}
	return float64(c) / float64(len(samples))
}

// Summary holds moments of a sequence.
type Summary struct {
	N        int
	Mean     float64
	Variance float64
	Min, Max float64
}

// Summarize computes the summary of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	if s.N == 0 {
		return Summary{}
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	ss := 0.0
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.Variance = ss / float64(s.N-1)
	}
	return s
}

func sortFloat64s(s []float64) { sort.Float64s(s) }
