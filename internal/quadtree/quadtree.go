// Package quadtree implements a 2-D point quadtree and its IQS conversion,
// the structure Looz and Meyerhenke applied tree sampling to (Section 3.2
// remark of the paper): O(n) space and O((√n + s) log n) query time under
// data assumptions. Here it serves as the comparator for the kd-tree
// instantiation of Theorem 5 (experiment E6).
//
// The tree recursively splits the data bounding square into four
// quadrants until a cell holds at most BucketSize points (or the depth
// cap is hit, which handles duplicate points). Points are laid out in
// depth-first order, so every cell spans a contiguous range of the point
// array and the coverage transform applies directly.
package quadtree

import (
	"errors"
	"fmt"

	"repro/internal/coverage"
	"repro/internal/rng"
)

// BucketSize is the leaf capacity.
const BucketSize = 8

// maxDepth caps recursion so coincident points terminate.
const maxDepth = 48

// Rect is an axis-parallel rectangle (closed).
type Rect struct {
	Min, Max [2]float64
}

// Contains reports whether (x, y) lies in the rectangle.
func (q Rect) Contains(x, y float64) bool {
	return x >= q.Min[0] && x <= q.Max[0] && y >= q.Min[1] && y <= q.Max[1]
}

// ErrEmpty is returned when building over no points.
var ErrEmpty = errors.New("quadtree: empty input")

// Tree is a quadtree over n points in R².
type Tree struct {
	xs, ys      []float64 // point coordinates in depth-first layout
	orig        []int
	leafWeights []float64
	nodes       []qnode
	root        int32
}

type qnode struct {
	children [4]int32 // -1 when absent; all -1 for leaf cells
	lo, hi   int32
	weight   float64
	// cell bounds
	minX, minY, maxX, maxY float64
	leaf                   bool
}

// New builds the quadtree over pts (x, y pairs) with weights.
func New(pts [][]float64, weights []float64) (*Tree, error) {
	n := len(pts)
	if n == 0 {
		return nil, ErrEmpty
	}
	if len(weights) != n {
		return nil, errors.New("quadtree: points and weights length mismatch")
	}
	t := &Tree{
		xs:          make([]float64, n),
		ys:          make([]float64, n),
		orig:        make([]int, n),
		leafWeights: make([]float64, n),
	}
	for i, p := range pts {
		if len(p) != 2 {
			return nil, fmt.Errorf("quadtree: point %d has dimension %d, want 2", i, len(p))
		}
		if !(weights[i] > 0) {
			return nil, errors.New("quadtree: weights must be positive and finite")
		}
		t.xs[i], t.ys[i] = p[0], p[1]
		t.orig[i] = i
		t.leafWeights[i] = weights[i]
	}
	minX, minY := t.xs[0], t.ys[0]
	maxX, maxY := minX, minY
	for i := 1; i < n; i++ {
		minX = min(minX, t.xs[i])
		maxX = max(maxX, t.xs[i])
		minY = min(minY, t.ys[i])
		maxY = max(maxY, t.ys[i])
	}
	t.root = t.build(0, n-1, minX, minY, maxX, maxY, 0)
	return t, nil
}

func (t *Tree) build(lo, hi int, minX, minY, maxX, maxY float64, depth int) int32 {
	id := int32(len(t.nodes))
	t.nodes = append(t.nodes, qnode{
		children: [4]int32{-1, -1, -1, -1},
		lo:       int32(lo), hi: int32(hi),
		minX: minX, minY: minY, maxX: maxX, maxY: maxY,
	})
	w := 0.0
	for i := lo; i <= hi; i++ {
		w += t.leafWeights[i]
	}
	t.nodes[id].weight = w
	if hi-lo+1 <= BucketSize || depth >= maxDepth {
		t.nodes[id].leaf = true
		return id
	}
	cx, cy := (minX+maxX)/2, (minY+maxY)/2
	// Partition [lo,hi] into the four quadrants in place:
	// 0: x<cx,y<cy  1: x≥cx,y<cy  2: x<cx,y≥cy  3: x≥cx,y≥cy
	quad := func(i int) int {
		q := 0
		if t.xs[i] >= cx {
			q |= 1
		}
		if t.ys[i] >= cy {
			q |= 2
		}
		return q
	}
	// Counting sort by quadrant (stable enough; in-place via cycle is
	// overkill — use a temp permutation).
	counts := [4]int{}
	for i := lo; i <= hi; i++ {
		counts[quad(i)]++
	}
	starts := [4]int{lo, lo + counts[0], lo + counts[0] + counts[1], lo + counts[0] + counts[1] + counts[2]}
	next := starts
	k := hi - lo + 1
	tx := make([]float64, k)
	ty := make([]float64, k)
	to := make([]int, k)
	tw := make([]float64, k)
	for i := lo; i <= hi; i++ {
		q := quad(i)
		p := next[q] - lo
		next[q]++
		tx[p], ty[p], to[p], tw[p] = t.xs[i], t.ys[i], t.orig[i], t.leafWeights[i]
	}
	copy(t.xs[lo:hi+1], tx)
	copy(t.ys[lo:hi+1], ty)
	copy(t.orig[lo:hi+1], to)
	copy(t.leafWeights[lo:hi+1], tw)

	bounds := [4][4]float64{
		{minX, minY, cx, cy},
		{cx, minY, maxX, cy},
		{minX, cy, cx, maxY},
		{cx, cy, maxX, maxY},
	}
	for q := 0; q < 4; q++ {
		if counts[q] == 0 {
			continue
		}
		clo := starts[q]
		chi := clo + counts[q] - 1
		b := bounds[q]
		child := t.build(clo, chi, b[0], b[1], b[2], b[3], depth+1)
		t.nodes[id].children[q] = child
	}
	return id
}

// Len returns the number of points.
func (t *Tree) Len() int { return len(t.xs) }

// NumElements implements coverage.Index.
func (t *Tree) NumElements() int { return len(t.xs) }

// OrigIndex returns the caller's index of the point at layout position i.
func (t *Tree) OrigIndex(i int) int { return t.orig[i] }

// LeafWeights returns the weights in layout order (aliases state).
func (t *Tree) LeafWeights() []float64 { return t.leafWeights }

// Cover implements coverage.Index for rectangle predicates.
func (t *Tree) Cover(q Rect, dst []coverage.Node) []coverage.Node {
	return t.cover(t.root, q, dst)
}

func (t *Tree) cover(id int32, q Rect, dst []coverage.Node) []coverage.Node {
	nd := &t.nodes[id]
	if nd.maxX < q.Min[0] || nd.minX > q.Max[0] || nd.maxY < q.Min[1] || nd.minY > q.Max[1] {
		return dst
	}
	if nd.minX >= q.Min[0] && nd.maxX <= q.Max[0] && nd.minY >= q.Min[1] && nd.maxY <= q.Max[1] {
		return append(dst, coverage.Node{Lo: int(nd.lo), Hi: int(nd.hi), Weight: nd.weight})
	}
	if nd.leaf {
		// Boundary cell: emit qualifying points as unit spans, merging
		// adjacent qualifying runs.
		runStart := -1
		runWeight := 0.0
		for i := int(nd.lo); i <= int(nd.hi); i++ {
			if q.Contains(t.xs[i], t.ys[i]) {
				if runStart < 0 {
					runStart = i
					runWeight = 0
				}
				runWeight += t.leafWeights[i]
				continue
			}
			if runStart >= 0 {
				dst = append(dst, coverage.Node{Lo: runStart, Hi: i - 1, Weight: runWeight})
				runStart = -1
			}
		}
		if runStart >= 0 {
			dst = append(dst, coverage.Node{Lo: runStart, Hi: int(nd.hi), Weight: runWeight})
		}
		return dst
	}
	for _, c := range nd.children {
		if c >= 0 {
			dst = t.cover(c, q, dst)
		}
	}
	return dst
}

var _ coverage.Index[Rect] = (*Tree)(nil)

// Sampler bundles the quadtree with the Theorem 5 transform.
type Sampler struct {
	Tree *Tree
	cov  *coverage.Sampler[Rect]
}

// NewSampler builds the tree and its coverage transform.
func NewSampler(pts [][]float64, weights []float64) (*Sampler, error) {
	t, err := New(pts, weights)
	if err != nil {
		return nil, err
	}
	cs, err := coverage.NewSampler[Rect](t, t.leafWeights)
	if err != nil {
		return nil, err
	}
	return &Sampler{Tree: t, cov: cs}, nil
}

// Query appends s independent weighted samples from S ∩ q as original
// point indices.
func (sp *Sampler) Query(r *rng.Source, q Rect, s int, dst []int) ([]int, bool) {
	var scratch [64]int
	buf, ok := sp.cov.Query(r, q, s, scratch[:0])
	if !ok {
		return dst, false
	}
	for _, pos := range buf {
		dst = append(dst, sp.Tree.orig[pos])
	}
	return dst, true
}

// RangeWeight returns the total weight of points in q.
func (sp *Sampler) RangeWeight(q Rect) float64 { return sp.cov.RangeWeight(q) }
