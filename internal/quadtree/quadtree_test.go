package quadtree

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func makePoints(n int, seed uint64) ([][]float64, []float64) {
	r := rng.New(seed)
	pts := make([][]float64, n)
	w := make([]float64, n)
	for i := range pts {
		pts[i] = []float64{r.Float64(), r.Float64()}
		w[i] = r.Float64()*3 + 0.2
	}
	return pts, w
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil, nil); err != ErrEmpty {
		t.Fatalf("err = %v", err)
	}
	if _, err := New([][]float64{{1, 2}}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := New([][]float64{{1}}, []float64{1}); err == nil {
		t.Fatal("1-d point accepted")
	}
	if _, err := New([][]float64{{1, 2}}, []float64{0}); err == nil {
		t.Fatal("zero weight accepted")
	}
}

func TestCoverMatchesBruteForce(t *testing.T) {
	pts, w := makePoints(400, 1)
	tree, err := New(pts, w)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	f := func(raw [4]uint8) bool {
		q := Rect{
			Min: [2]float64{float64(raw[0]) / 256, float64(raw[1]) / 256},
			Max: [2]float64{float64(raw[0])/256 + float64(raw[2])/128, float64(raw[1])/256 + float64(raw[3])/128},
		}
		cov := tree.Cover(q, nil)
		// Spans disjoint.
		sort.Slice(cov, func(i, j int) bool { return cov[i].Lo < cov[j].Lo })
		for i := 1; i < len(cov); i++ {
			if cov[i].Lo <= cov[i-1].Hi {
				return false
			}
		}
		inCover := map[int]bool{}
		total := 0.0
		for _, nd := range cov {
			total += nd.Weight
			for i := nd.Lo; i <= nd.Hi; i++ {
				inCover[i] = true
			}
		}
		want := 0.0
		for i := 0; i < tree.Len(); i++ {
			inside := q.Contains(tree.xs[i], tree.ys[i])
			if inside != inCover[i] {
				return false
			}
			if inside {
				want += tree.leafWeights[i]
			}
		}
		_ = r
		return math.Abs(total-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func chi2Crit(dof int) float64 {
	z := 3.719
	d := float64(dof)
	x := 1 - 2/(9*d) + z*math.Sqrt(2/(9*d))
	return d * x * x * x
}

func TestSamplerDistribution(t *testing.T) {
	const n = 80
	pts, w := makePoints(n, 3)
	sp, err := NewSampler(pts, w)
	if err != nil {
		t.Fatal(err)
	}
	q := Rect{Min: [2]float64{0.2, 0.2}, Max: [2]float64{0.8, 0.8}}
	inside := map[int]float64{}
	total := 0.0
	for i, p := range pts {
		if q.Contains(p[0], p[1]) {
			inside[i] = w[i]
			total += w[i]
		}
	}
	r := rng.New(4)
	const draws = 250000
	counts := map[int]int{}
	out, ok := sp.Query(r, q, draws, nil)
	if !ok {
		t.Fatal("query empty")
	}
	for _, idx := range out {
		if _, in := inside[idx]; !in {
			t.Fatalf("sampled %d outside query", idx)
		}
		counts[idx]++
	}
	chi2 := 0.0
	for idx, wi := range inside {
		expected := draws * wi / total
		diff := float64(counts[idx]) - expected
		chi2 += diff * diff / expected
	}
	if chi2 > chi2Crit(len(inside)-1) {
		t.Fatalf("chi2 = %v", chi2)
	}
}

func TestCoincidentPoints(t *testing.T) {
	// All points identical: depth cap must terminate the build.
	pts := make([][]float64, 100)
	w := make([]float64, 100)
	for i := range pts {
		pts[i] = []float64{0.5, 0.5}
		w[i] = 1
	}
	sp, err := NewSampler(pts, w)
	if err != nil {
		t.Fatal(err)
	}
	q := Rect{Min: [2]float64{0, 0}, Max: [2]float64{1, 1}}
	out, ok := sp.Query(rng.New(5), q, 500, nil)
	if !ok || len(out) != 500 {
		t.Fatalf("ok=%v len=%d", ok, len(out))
	}
}

func TestEmptyQuery(t *testing.T) {
	pts, w := makePoints(32, 6)
	sp, err := NewSampler(pts, w)
	if err != nil {
		t.Fatal(err)
	}
	q := Rect{Min: [2]float64{2, 2}, Max: [2]float64{3, 3}}
	if _, ok := sp.Query(rng.New(7), q, 2, nil); ok {
		t.Fatal("empty query returned ok")
	}
}

func BenchmarkSamplerQuery(b *testing.B) {
	pts, w := makePoints(1<<16, 1)
	sp, err := NewSampler(pts, w)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	q := Rect{Min: [2]float64{0.25, 0.25}, Max: [2]float64{0.75, 0.75}}
	var dst []int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _ = sp.Query(r, q, 64, dst[:0])
	}
}

func TestAccessorsAndRangeWeight(t *testing.T) {
	pts, w := makePoints(64, 9)
	sp, err := NewSampler(pts, w)
	if err != nil {
		t.Fatal(err)
	}
	tree := sp.Tree
	// OrigIndex must be a permutation of 0..n-1.
	seen := map[int]bool{}
	for i := 0; i < tree.Len(); i++ {
		oi := tree.OrigIndex(i)
		if oi < 0 || oi >= tree.Len() || seen[oi] {
			t.Fatalf("OrigIndex broken at %d", i)
		}
		seen[oi] = true
	}
	if got := len(tree.LeafWeights()); got != 64 {
		t.Fatalf("LeafWeights len = %d", got)
	}
	q := Rect{Min: [2]float64{0.2, 0.2}, Max: [2]float64{0.8, 0.8}}
	want := 0.0
	for i, p := range pts {
		if q.Contains(p[0], p[1]) {
			want += w[i]
		}
	}
	if got := sp.RangeWeight(q); math.Abs(got-want) > 1e-9 {
		t.Fatalf("RangeWeight = %v, want %v", got, want)
	}
}
