// Package service is the hardened request layer over internal/core: the
// component that makes the paper's samplers usable under real concurrent
// traffic. It adds, on top of the raw structures:
//
//   - Per-request deadlines and cooperative cancellation: every query
//     and update threads a context.Context into the core's context-aware
//     paths, which poll it inside their long loops (naive report scans,
//     batched draws, WoR dedupe, chunked rebuilds).
//
//   - Panic containment: an internal invariant panic in any structure
//     package is recovered at the service boundary and converted into a
//     typed *InternalError carrying the structure kind and operation —
//     it never kills the process.
//
//   - Graceful degradation: every index kind has the Naive
//     report-then-sample baseline as a correct slow path. When a build
//     or rebuild panics, faults, or exceeds its budget, the service
//     falls back to KindNaive for that dataset, records a
//     DowngradeEvent, and keeps answering with the exact same query
//     distribution. A later successful rebuild restores the requested
//     kind.
//
//   - Snapshot-swap concurrency: reads grab an immutable snapshot under
//     a brief RLock and query it lock-free (static samplers are safe for
//     concurrent reads); updates copy the master arrays, rebuild outside
//     any reader-visible lock, and swap the snapshot pointer atomically.
//     Concurrent readers never observe a mid-rebuild structure.
//
//   - Optional EM persistence mirror: each (re)build persists the
//     dataset through an *em.Device which may have a FaultPolicy
//     installed; transient faults are absorbed by bounded retry with
//     exponential backoff, and persistent faults degrade the dataset
//     instead of failing the process.
package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/em"
)

// ErrEmptyDataset is returned by Create for zero elements and by Delete
// when removing the last element (a dataset never becomes empty).
var ErrEmptyDataset = errors.New("service: dataset must hold at least one element")

// Options configures a Service.
type Options struct {
	// BuildBudget bounds every index build/rebuild; past it the build is
	// cooperatively abandoned and the dataset degrades to KindNaive.
	// Zero means no budget.
	BuildBudget time.Duration
	// Mirror, when non-nil, is the EM device every (re)build persists
	// the dataset through — the simulated disk of DESIGN.md substitution
	// 5, typically with a FaultPolicy installed.
	Mirror *em.Device
	// Retry bounds the mirror-persistence retries; zero-valued means
	// em.DefaultRetry.
	Retry em.RetryPolicy
}

// DowngradeEvent records one fallback to the naive sampler.
type DowngradeEvent struct {
	Time    time.Time
	Dataset string
	From    core.Kind // the kind that failed to (re)build
	Op      string    // "build" or "rebuild"
	Reason  string
}

// Health is a point-in-time summary of the service's counters.
type Health struct {
	Requests        int64
	Failures        int64 // requests that returned an error (all typed)
	PanicsContained int64
	Downgrades      int64
	Rebuilds        int64 // successful snapshot swaps from updates
	EMFaults        int64 // transient faults injected by the mirror
	Datasets        []DatasetHealth
}

// DatasetHealth describes one hosted dataset.
type DatasetHealth struct {
	Name      string
	Requested core.Kind
	Active    core.Kind
	Degraded  bool
	Len       int
}

// snapshot is the immutable unit readers hold: once published it is
// never mutated, so any number of goroutines may query it concurrently
// (each with its own *core.Rand).
type snapshot struct {
	sampler *core.RangeSampler
	active  core.Kind
}

// dataset pairs the published snapshot with the master element arrays
// updates rebuild from.
type dataset struct {
	name      string
	requested core.Kind

	mu   sync.RWMutex // guards snap (pointer swap only)
	snap *snapshot

	updMu           sync.Mutex // serialises updates; guards values/weights
	values, weights []float64
}

func (ds *dataset) snapshot() *snapshot {
	ds.mu.RLock()
	sn := ds.snap
	ds.mu.RUnlock()
	return sn
}

func (ds *dataset) publish(sn *snapshot) {
	ds.mu.Lock()
	ds.snap = sn
	ds.mu.Unlock()
}

// Service hosts named datasets and serves hardened sampling traffic.
// All methods are safe for concurrent use; callers supply one
// *core.Rand per goroutine, as everywhere else in this repository.
type Service struct {
	opts Options

	mu       sync.RWMutex
	datasets map[string]*dataset

	mirrorMu sync.Mutex // serialises access to the shared EM mirror

	requests        atomic.Int64
	failures        atomic.Int64
	panicsContained atomic.Int64
	downgrades      atomic.Int64
	rebuilds        atomic.Int64

	evMu   sync.Mutex
	events []DowngradeEvent
}

// New returns an empty service.
func New(opts Options) *Service {
	return &Service{opts: opts, datasets: make(map[string]*dataset)}
}

// guard runs fn with panic containment: a panic increments the health
// counter and comes back as a typed *InternalError instead of unwinding
// past the service boundary.
func (s *Service) guard(kind core.Kind, op string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			s.panicsContained.Add(1)
			err = &InternalError{Kind: kind, Op: op, Value: r, Stack: string(debug.Stack())}
		}
	}()
	return fn()
}

// track counts the request and, on return, its failure.
func (s *Service) track(err *error) func() {
	s.requests.Add(1)
	return func() {
		if *err != nil {
			s.failures.Add(1)
		}
	}
}

func (s *Service) lookup(name string) (*dataset, error) {
	s.mu.RLock()
	ds := s.datasets[name]
	s.mu.RUnlock()
	if ds == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	return ds, nil
}

// mirrorPersist writes the dataset through the EM mirror (and touches it
// back) under bounded retry with exponential backoff. Injected faults
// surface as *em.FaultError panics inside the array layers; CatchFault
// turns each into an error and WithRetry absorbs transient runs.
func (s *Service) mirrorPersist(values []float64) error {
	dev := s.opts.Mirror
	if dev == nil || len(values) == 0 {
		return nil
	}
	rp := s.opts.Retry
	if rp.MaxAttempts == 0 {
		rp = em.DefaultRetry
	}
	s.mirrorMu.Lock()
	defer s.mirrorMu.Unlock()
	return em.WithRetry(rp, func() error {
		return em.CatchFault(func() {
			arr := em.NewArray(dev, len(values), 1)
			w := arr.Write(0)
			for _, v := range values {
				w.Append([]em.Word{v})
			}
			w.Flush()
			// Read-back touch of both ends verifies the blocks landed.
			rec := make([]em.Word, 1)
			arr.Get(0, rec)
			arr.Get(len(values)-1, rec)
		})
	})
}

// build constructs a snapshot of the requested kind, degrading to
// KindNaive — and recording the downgrade — when the mirror faults
// persistently, the build panics, or the budget expires. Caller
// cancellation and input-validation errors are returned as-is (no
// fallback: the request itself is bad or gone).
func (s *Service) build(parent context.Context, name string, kind core.Kind, values, weights []float64, op string) (*snapshot, error) {
	ctx := parent
	if s.opts.BuildBudget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(parent, s.opts.BuildBudget)
		defer cancel()
	}
	var reasons []string
	if err := s.mirrorPersist(values); err != nil {
		reasons = append(reasons, fmt.Sprintf("EM mirror: %v", err))
	}
	if len(reasons) == 0 {
		var sampler *core.RangeSampler
		berr := s.guard(kind, op, func() error {
			var e error
			sampler, e = core.NewRangeSamplerContext(ctx, kind, values, weights)
			return e
		})
		if berr == nil {
			return &snapshot{sampler: sampler, active: kind}, nil
		}
		var ie *InternalError
		switch {
		case errors.As(berr, &ie):
			reasons = append(reasons, berr.Error())
		case parent.Err() != nil:
			return nil, parent.Err() // the caller gave up; no fallback
		case errors.Is(berr, context.DeadlineExceeded) || errors.Is(berr, context.Canceled):
			reasons = append(reasons, fmt.Sprintf("build budget %v exceeded", s.opts.BuildBudget))
		default:
			return nil, berr // typed validation error (bad weight/value)
		}
	}
	// Graceful degradation: the naive baseline answers the exact same
	// query distribution, so serving it beats serving nothing.
	var fb *core.RangeSampler
	ferr := s.guard(core.KindNaive, op+"-fallback", func() error {
		var e error
		fb, e = core.NewRangeSampler(core.KindNaive, values, weights)
		return e
	})
	if ferr != nil {
		return nil, ferr
	}
	s.downgrades.Add(1)
	ev := DowngradeEvent{
		Time:    time.Now(),
		Dataset: name,
		From:    kind,
		Op:      op,
		Reason:  strings.Join(reasons, "; "),
	}
	s.evMu.Lock()
	s.events = append(s.events, ev)
	s.evMu.Unlock()
	return &snapshot{sampler: fb, active: core.KindNaive}, nil
}

// Create builds and hosts a dataset. Nil weights mean uniform. The
// inputs are copied; invalid inputs are rejected with the typed core
// errors. If the index build fails the dataset is still created, served
// by the naive fallback.
func (s *Service) Create(ctx context.Context, name string, kind core.Kind, values, weights []float64) (err error) {
	defer s.track(&err)()
	if len(values) == 0 {
		return ErrEmptyDataset
	}
	if weights != nil && len(weights) != len(values) {
		return fmt.Errorf("%w: %d values vs %d weights", core.ErrBadValue, len(values), len(weights))
	}
	s.mu.RLock()
	_, taken := s.datasets[name]
	s.mu.RUnlock()
	if taken {
		return fmt.Errorf("%w: %q", ErrDatasetExists, name)
	}
	vcopy := append([]float64(nil), values...)
	var wcopy []float64
	if weights == nil {
		wcopy = make([]float64, len(values))
		for i := range wcopy {
			wcopy[i] = 1
		}
	} else {
		wcopy = append([]float64(nil), weights...)
	}
	snap, err := s.build(ctx, name, kind, vcopy, wcopy, "build")
	if err != nil {
		return err
	}
	ds := &dataset{name: name, requested: kind, values: vcopy, weights: wcopy, snap: snap}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.datasets[name]; ok {
		return fmt.Errorf("%w: %q", ErrDatasetExists, name)
	}
	s.datasets[name] = ds
	return nil
}

// Sample draws k independent weighted samples from the dataset's
// S ∩ [lo, hi], honouring ctx. The returned slice is freshly allocated
// and owned by the caller; the query's internal temporaries come from a
// pooled arena, so a steady request load recycles scratch instead of
// allocating per query. Use SampleInto to also recycle the result
// buffer.
func (s *Service) Sample(ctx context.Context, r *core.Rand, name string, lo, hi float64, k int) (out []float64, err error) {
	defer s.track(&err)()
	ds, err := s.lookup(name)
	if err != nil {
		return nil, err
	}
	snap := ds.snapshot()
	sc := core.GetScratch()
	defer core.PutScratch(sc)
	err = s.guard(snap.active, "sample", func() error {
		var e error
		var dst []float64
		if k > 0 {
			dst = make([]float64, 0, k)
		}
		out, e = snap.sampler.SampleContextInto(ctx, r, lo, hi, k, dst, sc)
		return e
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SampleInto is Sample appending into caller-owned dst — the
// zero-steady-state-allocation path the sharded coordinator and HTTP
// front end run per request. dst is returned unchanged on error, so a
// pooled buffer can be recycled regardless of outcome.
func (s *Service) SampleInto(ctx context.Context, r *core.Rand, name string, lo, hi float64, k int, dst []float64) (out []float64, err error) {
	defer s.track(&err)()
	ds, err := s.lookup(name)
	if err != nil {
		return dst, err
	}
	snap := ds.snapshot()
	sc := core.GetScratch()
	defer core.PutScratch(sc)
	out = dst
	err = s.guard(snap.active, "sample", func() error {
		var e error
		out, e = snap.sampler.SampleContextInto(ctx, r, lo, hi, k, out, sc)
		return e
	})
	if err != nil {
		return dst, err
	}
	return out, nil
}

// SampleWoR draws a uniformly random size-k subset of S ∩ [lo, hi]
// without replacement (uniform-weight regime), honouring ctx. Like
// Sample it recycles its internal temporaries from a pooled arena; use
// SampleWoRInto to also recycle the result buffer.
func (s *Service) SampleWoR(ctx context.Context, r *core.Rand, name string, lo, hi float64, k int) (out []float64, err error) {
	defer s.track(&err)()
	ds, err := s.lookup(name)
	if err != nil {
		return nil, err
	}
	snap := ds.snapshot()
	sc := core.GetScratch()
	defer core.PutScratch(sc)
	err = s.guard(snap.active, "wor", func() error {
		var e error
		out, e = snap.sampler.SampleWoRContextInto(ctx, r, lo, hi, k, make([]float64, 0, k), sc)
		return e
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SampleWoRInto is SampleWoR appending into caller-owned dst. dst is
// returned unchanged on error.
func (s *Service) SampleWoRInto(ctx context.Context, r *core.Rand, name string, lo, hi float64, k int, dst []float64) (out []float64, err error) {
	defer s.track(&err)()
	ds, err := s.lookup(name)
	if err != nil {
		return dst, err
	}
	snap := ds.snapshot()
	sc := core.GetScratch()
	defer core.PutScratch(sc)
	out = dst
	err = s.guard(snap.active, "wor", func() error {
		var e error
		out, e = snap.sampler.SampleWoRContextInto(ctx, r, lo, hi, k, out, sc)
		return e
	})
	if err != nil {
		return dst, err
	}
	return out, nil
}

// RangeWeight returns the total weight of S ∩ [lo, hi] in O(log n). The
// sharded coordinator calls it per shard per query to split the sample
// budget multinomially over in-range shard weights.
func (s *Service) RangeWeight(ctx context.Context, name string, lo, hi float64) (w float64, err error) {
	defer s.track(&err)()
	ds, err := s.lookup(name)
	if err != nil {
		return 0, err
	}
	if err = ctx.Err(); err != nil {
		return 0, err
	}
	snap := ds.snapshot()
	err = s.guard(snap.active, "rangeweight", func() error {
		w = snap.sampler.RangeWeight(lo, hi)
		return nil
	})
	if err != nil {
		return 0, err
	}
	return w, nil
}

// Count returns |S ∩ [lo, hi]|.
func (s *Service) Count(ctx context.Context, name string, lo, hi float64) (n int, err error) {
	defer s.track(&err)()
	ds, err := s.lookup(name)
	if err != nil {
		return 0, err
	}
	if err = ctx.Err(); err != nil {
		return 0, err
	}
	snap := ds.snapshot()
	err = s.guard(snap.active, "count", func() error {
		n = snap.sampler.Count(lo, hi)
		return nil
	})
	if err != nil {
		return 0, err
	}
	return n, nil
}

// Insert adds an element and swaps in a rebuilt snapshot. Readers keep
// the old snapshot until the new one is fully built; on any rebuild
// error the update is rejected and the dataset is unchanged (except
// that build failures of the requested kind degrade to a naive snapshot
// that includes the update).
func (s *Service) Insert(ctx context.Context, name string, value, weight float64) (err error) {
	defer s.track(&err)()
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return fmt.Errorf("%w: value = %v", core.ErrBadValue, value)
	}
	if !(weight > 0) || math.IsInf(weight, 1) {
		return fmt.Errorf("%w: weight = %v", core.ErrBadWeight, weight)
	}
	ds, err := s.lookup(name)
	if err != nil {
		return err
	}
	ds.updMu.Lock()
	defer ds.updMu.Unlock()
	if err = ctx.Err(); err != nil {
		return err
	}
	nv := append(append([]float64(nil), ds.values...), value)
	nw := append(append([]float64(nil), ds.weights...), weight)
	return s.swapIn(ctx, ds, nv, nw)
}

// Delete removes one element with the given value and swaps in a
// rebuilt snapshot.
func (s *Service) Delete(ctx context.Context, name string, value float64) (err error) {
	defer s.track(&err)()
	ds, err := s.lookup(name)
	if err != nil {
		return err
	}
	ds.updMu.Lock()
	defer ds.updMu.Unlock()
	if err = ctx.Err(); err != nil {
		return err
	}
	at := -1
	for i, v := range ds.values {
		if v == value {
			at = i
			break
		}
	}
	if at < 0 {
		return fmt.Errorf("%w: %v", ErrValueNotFound, value)
	}
	if len(ds.values) == 1 {
		return ErrEmptyDataset
	}
	nv := make([]float64, 0, len(ds.values)-1)
	nw := make([]float64, 0, len(ds.weights)-1)
	nv = append(append(nv, ds.values[:at]...), ds.values[at+1:]...)
	nw = append(append(nw, ds.weights[:at]...), ds.weights[at+1:]...)
	return s.swapIn(ctx, ds, nv, nw)
}

// swapIn rebuilds from the new master arrays and publishes the snapshot
// (copy-on-rebuild: readers never see intermediate state). Caller holds
// ds.updMu.
func (s *Service) swapIn(ctx context.Context, ds *dataset, nv, nw []float64) error {
	snap, err := s.build(ctx, ds.name, ds.requested, nv, nw, "rebuild")
	if err != nil {
		return err
	}
	ds.values, ds.weights = nv, nw
	ds.publish(snap)
	s.rebuilds.Add(1)
	return nil
}

// Health returns the current counters and per-dataset states.
func (s *Service) Health() Health {
	h := Health{
		Requests:        s.requests.Load(),
		Failures:        s.failures.Load(),
		PanicsContained: s.panicsContained.Load(),
		Downgrades:      s.downgrades.Load(),
		Rebuilds:        s.rebuilds.Load(),
	}
	if s.opts.Mirror != nil {
		h.EMFaults = s.opts.Mirror.FaultsInjected()
	}
	s.mu.RLock()
	names := make([]string, 0, len(s.datasets))
	for n := range s.datasets {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ds := s.datasets[n]
		snap := ds.snapshot()
		h.Datasets = append(h.Datasets, DatasetHealth{
			Name:      n,
			Requested: ds.requested,
			Active:    snap.active,
			Degraded:  snap.active != ds.requested,
			Len:       snap.sampler.Len(),
		})
	}
	s.mu.RUnlock()
	return h
}

// Downgrades returns a copy of the recorded fallback events.
func (s *Service) Downgrades() []DowngradeEvent {
	s.evMu.Lock()
	defer s.evMu.Unlock()
	return append([]DowngradeEvent(nil), s.events...)
}
