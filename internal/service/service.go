// Package service is the hardened request layer over internal/core: the
// component that makes the paper's samplers usable under real concurrent
// traffic. It adds, on top of the raw structures:
//
//   - Per-request deadlines and cooperative cancellation: every query
//     and update threads a context.Context into the core's context-aware
//     paths, which poll it inside their long loops (naive report scans,
//     batched draws, WoR dedupe, chunked rebuilds).
//
//   - Panic containment: an internal invariant panic in any structure
//     package is recovered at the service boundary and converted into a
//     typed *InternalError carrying the structure kind and operation —
//     it never kills the process.
//
//   - Graceful degradation: every index kind has the Naive
//     report-then-sample baseline as a correct slow path. When a build
//     or rebuild panics, faults, or exceeds its budget, the service
//     falls back to KindNaive for that dataset, records a
//     DowngradeEvent, and keeps answering with the exact same query
//     distribution. A later successful rebuild restores the requested
//     kind.
//
//   - Snapshot-swap concurrency: reads grab an immutable snapshot under
//     a brief RLock and query it lock-free (static samplers are safe for
//     concurrent reads); updates copy the master arrays, rebuild outside
//     any reader-visible lock, and swap the snapshot pointer atomically.
//     Concurrent readers never observe a mid-rebuild structure.
//
//   - Optional EM persistence mirror: each (re)build persists the
//     dataset through an *em.Device which may have a FaultPolicy
//     installed; transient faults are absorbed by bounded retry with
//     exponential backoff, and persistent faults degrade the dataset
//     instead of failing the process.
package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/em"
	"repro/internal/ingest"
	"repro/internal/metrics"
	"repro/internal/samplepool"
)

// ErrEmptyDataset is returned by Create for zero elements and by Delete
// when removing the last element (a dataset never becomes empty).
var ErrEmptyDataset = errors.New("service: dataset must hold at least one element")

// Options configures a Service.
type Options struct {
	// BuildBudget bounds every index build/rebuild; past it the build is
	// cooperatively abandoned and the dataset degrades to KindNaive.
	// Zero means no budget.
	BuildBudget time.Duration
	// Mirror, when non-nil, is the EM device every (re)build persists
	// the dataset through — the simulated disk of DESIGN.md substitution
	// 5, typically with a FaultPolicy installed.
	Mirror *em.Device
	// Retry bounds the mirror-persistence retries; zero-valued means
	// em.DefaultRetry.
	Retry em.RetryPolicy
	// Metrics, when non-nil, is the registry the service exports its
	// counters, per-kind latency histograms, EM mirror I/O totals, and
	// per-dataset sample-quality gauges through. Nil still collects
	// (instruments work unregistered) but exports nothing.
	Metrics *metrics.Registry
	// MetricLabels are constant labels stamped on every series this
	// instance registers — the sharded coordinator uses them to tag
	// each shard's service with its shard index.
	MetricLabels []metrics.Label
	// Logger receives structured warnings (downgrades, sample-quality
	// breaches), each carrying the request ID of the triggering request
	// when one is in the context. Nil discards.
	Logger *slog.Logger
	// Quality configures the per-dataset chi-squared uniformity
	// monitors (cells, fold stride, alpha, warm-up); the Gauge and
	// OnBreach fields are owned by the service and ignored.
	Quality metrics.UniformityOptions
	// DowngradeEventCap bounds the retained downgrade-event ring
	// buffer; 0 means 256. The total downgrade count is unaffected
	// (Health.Downgrades keeps counting past the cap).
	DowngradeEventCap int
	// Pool, when non-nil, enables consume-once precomputed sample pools
	// on the weighted WR read path (internal/samplepool): hot ranges are
	// answered from pre-drawn buffers refilled off the request path,
	// with strict kernel fallback on miss or exhaustion. The config is
	// cloned per dataset; its Metrics/Labels fields are owned by the
	// service (per-dataset labels are stamped automatically) and the
	// per-dataset filler seed is derived from Seed and the dataset name.
	Pool *samplepool.Config
	// Estimate tunes the per-dataset distinct-count sketch state backing
	// Estimate (estimate.go). Nil means defaults; estimation is always
	// on. Services whose sketches meet at a shard fan-in must share the
	// same K and Salt — the coordinator passes one Options to every
	// shard, so the defaults satisfy this automatically.
	Estimate *EstimateOptions
}

// DowngradeEvent records one fallback to the naive sampler.
type DowngradeEvent struct {
	Time    time.Time
	Dataset string
	From    core.Kind // the kind that failed to (re)build
	Op      string    // "build" or "rebuild"
	Reason  string
}

// Health is a point-in-time summary of the service's counters.
type Health struct {
	Requests        int64
	Failures        int64 // requests that returned an error (all typed)
	PanicsContained int64
	Downgrades      int64
	Rebuilds        int64 // successful snapshot swaps from updates
	EMFaults        int64 // transient faults injected by the mirror
	Datasets        []DatasetHealth
}

// DatasetHealth describes one hosted dataset.
type DatasetHealth struct {
	Name      string
	Requested core.Kind
	Active    core.Kind
	Degraded  bool
	Len       int
	Mutable   bool // created via CreateMutable
	LogDepth  int  // pending delta-log entries (mutable only)
}

// snapshot is the immutable unit readers hold: once published it is
// never mutated, so any number of goroutines may query it concurrently
// (each with its own *core.Rand). The quality monitor rides on the
// snapshot because its expectations are a function of the exact element
// set — every rebuild gets a fresh monitor with a fresh baseline.
type snapshot struct {
	sampler *core.RangeSampler
	active  core.Kind
	monitor *metrics.Uniformity // internally synchronised; shared by readers
}

// dataset pairs the published snapshot with the master element arrays
// updates rebuild from. Mutable datasets (CreateMutable) additionally
// carry an ingest table — the write path — and a live-expectations
// quality monitor; for those, snap mirrors the table's current base for
// Health reporting while reads and writes go through tbl.
type dataset struct {
	name      string
	requested core.Kind

	mu   sync.RWMutex // guards snap (pointer swap only)
	snap *snapshot

	updMu           sync.Mutex // serialises updates; guards values/weights
	values, weights []float64

	tbl     *ingest.Table       // non-nil iff the dataset is mutable
	liveMon *metrics.Uniformity // dynamic-expectations monitor (mutable only)

	// pool, when non-nil, caches pre-drawn consume-once samples for hot
	// ranges of the currently published frozen structure; rebound on
	// every snapshot swap so it can never serve a retired base.
	pool *samplepool.Pool

	// est holds the distinct-count sketch state (estimate.go), rebuilt
	// wherever the pool is rebound so it always describes the published
	// base plus the overlay-era insert stream.
	est *distinctState
}

func (ds *dataset) snapshot() *snapshot {
	ds.mu.RLock()
	sn := ds.snap
	ds.mu.RUnlock()
	return sn
}

func (ds *dataset) publish(sn *snapshot) {
	ds.mu.Lock()
	ds.snap = sn
	ds.mu.Unlock()
}

// Service hosts named datasets and serves hardened sampling traffic.
// All methods are safe for concurrent use; callers supply one
// *core.Rand per goroutine, as everywhere else in this repository.
type Service struct {
	opts Options
	log  *slog.Logger

	mu       sync.RWMutex
	datasets map[string]*dataset

	mirrorMu sync.Mutex // serialises access to the shared EM mirror

	// Health counters are metrics.Counters (single atomics) so the
	// same increment feeds both the Health() API and the /metrics
	// exposition; with a nil registry they are ordinary unregistered
	// atomics.
	requests        *metrics.Counter
	failures        *metrics.Counter
	panicsContained *metrics.Counter
	downgrades      *metrics.Counter
	rebuilds        *metrics.Counter
	mirrorRetries   *metrics.Counter

	// latency[op][kind] is the per-kind sample latency histogram; op 0
	// is weighted WR sampling, op 1 is WoR.
	latency [2][]*metrics.Histogram

	// Downgrade events are retained in a fixed-size ring: evBuf is the
	// storage, evNext the next write slot, evLen the live count. The
	// total downgrade count lives in the downgrades counter, so the
	// ring overflowing loses detail, never accounting.
	evMu   sync.Mutex
	evBuf  []DowngradeEvent
	evNext int
	evLen  int
}

// latencyKinds are the structure kinds the per-kind histograms cover.
var latencyKinds = []core.Kind{core.KindChunked, core.KindAliasAug, core.KindTreeWalk, core.KindNaive}

// nopLogger discards everything; it keeps every s.log call site
// unconditional.
func nopLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 1}))
}

// New returns an empty service.
func New(opts Options) *Service {
	if opts.DowngradeEventCap <= 0 {
		opts.DowngradeEventCap = 256
	}
	s := &Service{opts: opts, datasets: make(map[string]*dataset)}
	s.log = opts.Logger
	if s.log == nil {
		s.log = nopLogger()
	}
	reg, ls := opts.Metrics, opts.MetricLabels
	s.requests = reg.Counter("iqs_service_requests_total", "Requests handled by the service layer.", ls...)
	s.failures = reg.Counter("iqs_service_failures_total", "Requests answered with a (typed) error.", ls...)
	s.panicsContained = reg.Counter("iqs_service_panics_contained_total", "Panics recovered at the service boundary.", ls...)
	s.downgrades = reg.Counter("iqs_service_downgrades_total", "Fallbacks to the naive sampler.", ls...)
	s.rebuilds = reg.Counter("iqs_service_rebuilds_total", "Successful snapshot swaps from updates.", ls...)
	s.mirrorRetries = reg.Counter("iqs_em_mirror_retries_total", "EM mirror persistence attempts beyond the first.", ls...)
	for op, opName := range []string{"sample", "wor"} {
		s.latency[op] = make([]*metrics.Histogram, len(latencyKinds))
		for _, k := range latencyKinds {
			kls := append(append([]metrics.Label(nil), ls...),
				metrics.L("op", opName), metrics.L("kind", k.String()))
			s.latency[op][int(k)] = reg.Histogram("iqs_service_sample_seconds",
				"Service-layer sample latency by op and active structure kind.", nil, kls...)
		}
	}
	if dev := opts.Mirror; dev != nil {
		reg.CounterFunc("iqs_em_reads_total", "EM mirror block reads.",
			func() float64 { return float64(dev.Reads()) }, ls...)
		reg.CounterFunc("iqs_em_writes_total", "EM mirror block writes.",
			func() float64 { return float64(dev.Writes()) }, ls...)
		reg.CounterFunc("iqs_em_faults_total", "Transient faults injected by the EM mirror.",
			func() float64 { return float64(dev.FaultsInjected()) }, ls...)
	}
	return s
}

// opSample / opWoR index the latency histogram's op dimension.
const (
	opSample = 0
	opWoR    = 1
)

// observeLatency records one sample draw in the (op, kind) histogram.
func (s *Service) observeLatency(op int, kind core.Kind, seconds float64) {
	if int(kind) < len(s.latency[op]) && s.latency[op][int(kind)] != nil {
		s.latency[op][int(kind)].Observe(seconds)
	}
}

// monitorOpts resolves the quality-monitor options for a dataset: the
// gauge is resolved through the registry, so rebuilds of the same
// dataset keep exporting through the same series.
func (s *Service) monitorOpts(name string) metrics.UniformityOptions {
	qo := s.opts.Quality
	ls := append(append([]metrics.Label(nil), s.opts.MetricLabels...), metrics.L("dataset", name))
	qo.Gauge = s.opts.Metrics.Gauge("iqs_sample_quality_ratio",
		"Chi-squared statistic over its critical value for served samples; > 1 flags a uniformity breach.", ls...)
	log := s.log
	qo.OnBreach = func(stat, crit float64, folded int64) {
		log.Warn("sample quality breach",
			slog.String("dataset", name),
			slog.Float64("chi2", stat),
			slog.Float64("critical", crit),
			slog.Int64("folded", folded))
	}
	return qo
}

// newMonitor builds the per-dataset quality monitor for a fresh
// snapshot (frozen expectations — static datasets).
func (s *Service) newMonitor(name string, values, weights []float64) *metrics.Uniformity {
	return metrics.NewUniformity(values, weights, s.monitorOpts(name))
}

// newPool builds the per-dataset sample pool when pooling is enabled;
// nil otherwise. The filler seed mixes the configured seed with the
// dataset name so every pool draws from its own stream.
func (s *Service) newPool(name string) *samplepool.Pool {
	if s.opts.Pool == nil {
		return nil
	}
	cfg := *s.opts.Pool
	cfg.Metrics = s.opts.Metrics
	cfg.Labels = append(append([]metrics.Label(nil), s.opts.MetricLabels...), metrics.L("dataset", name))
	seed := cfg.Seed
	for _, b := range []byte(name) {
		seed = seed*0x100000001b3 + uint64(b) // FNV-style fold
	}
	cfg.Seed = seed | 1
	return samplepool.New(cfg)
}

// recordDowngrade appends ev to the fixed-size event ring, evicting the
// oldest entry once the ring is full.
func (s *Service) recordDowngrade(ev DowngradeEvent) {
	s.evMu.Lock()
	if s.evBuf == nil {
		s.evBuf = make([]DowngradeEvent, s.opts.DowngradeEventCap)
	}
	s.evBuf[s.evNext] = ev
	s.evNext = (s.evNext + 1) % len(s.evBuf)
	if s.evLen < len(s.evBuf) {
		s.evLen++
	}
	s.evMu.Unlock()
}

// guard runs fn with panic containment: a panic increments the health
// counter and comes back as a typed *InternalError instead of unwinding
// past the service boundary.
func (s *Service) guard(kind core.Kind, op string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			s.panicsContained.Add(1)
			err = &InternalError{Kind: kind, Op: op, Value: r, Stack: string(debug.Stack())}
		}
	}()
	return fn()
}

// track counts the request and, on return, its failure.
func (s *Service) track(err *error) func() {
	s.requests.Add(1)
	return func() {
		if *err != nil {
			s.failures.Add(1)
		}
	}
}

func (s *Service) lookup(name string) (*dataset, error) {
	s.mu.RLock()
	ds := s.datasets[name]
	s.mu.RUnlock()
	if ds == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	return ds, nil
}

// mirrorPersist writes the dataset through the EM mirror (and touches it
// back) under bounded retry with exponential backoff. Injected faults
// surface as *em.FaultError panics inside the array layers; CatchFault
// turns each into an error and WithRetryContext absorbs transient runs
// while letting caller cancellation (or the build budget) cut the
// backoff sleeps short.
func (s *Service) mirrorPersist(ctx context.Context, values []float64) error {
	dev := s.opts.Mirror
	if dev == nil || len(values) == 0 {
		return nil
	}
	rp := s.opts.Retry
	if rp.MaxAttempts == 0 {
		rp = em.DefaultRetry
	}
	s.mirrorMu.Lock()
	defer s.mirrorMu.Unlock()
	attempt := 0
	return em.WithRetryContext(ctx, rp, func() error {
		if attempt++; attempt > 1 {
			s.mirrorRetries.Inc()
		}
		return em.CatchFault(func() {
			arr := em.NewArray(dev, len(values), 1)
			w := arr.Write(0)
			for _, v := range values {
				w.Append([]em.Word{v})
			}
			w.Flush()
			// Read-back touch of both ends verifies the blocks landed.
			rec := make([]em.Word, 1)
			arr.Get(0, rec)
			arr.Get(len(values)-1, rec)
		})
	})
}

// build constructs a snapshot of the requested kind, degrading to
// KindNaive — and recording the downgrade — when the mirror faults
// persistently, the build panics, or the budget expires. Caller
// cancellation and input-validation errors are returned as-is (no
// fallback: the request itself is bad or gone).
func (s *Service) build(parent context.Context, name string, kind core.Kind, values, weights []float64, op string) (*snapshot, error) {
	ctx := parent
	if s.opts.BuildBudget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(parent, s.opts.BuildBudget)
		defer cancel()
	}
	var reasons []string
	if err := s.mirrorPersist(ctx, values); err != nil {
		if parent.Err() != nil {
			return nil, parent.Err() // the caller gave up mid-persist; no fallback
		}
		reasons = append(reasons, fmt.Sprintf("EM mirror: %v", err))
	}
	if len(reasons) == 0 {
		var sampler *core.RangeSampler
		berr := s.guard(kind, op, func() error {
			var e error
			sampler, e = core.NewRangeSamplerContext(ctx, kind, values, weights)
			return e
		})
		if berr == nil {
			return &snapshot{sampler: sampler, active: kind, monitor: s.newMonitor(name, values, weights)}, nil
		}
		var ie *InternalError
		switch {
		case errors.As(berr, &ie):
			reasons = append(reasons, berr.Error())
		case parent.Err() != nil:
			return nil, parent.Err() // the caller gave up; no fallback
		case errors.Is(berr, context.DeadlineExceeded) || errors.Is(berr, context.Canceled):
			reasons = append(reasons, fmt.Sprintf("build budget %v exceeded", s.opts.BuildBudget))
		default:
			return nil, berr // typed validation error (bad weight/value)
		}
	}
	// Graceful degradation: the naive baseline answers the exact same
	// query distribution, so serving it beats serving nothing.
	var fb *core.RangeSampler
	ferr := s.guard(core.KindNaive, op+"-fallback", func() error {
		var e error
		fb, e = core.NewRangeSampler(core.KindNaive, values, weights)
		return e
	})
	if ferr != nil {
		return nil, ferr
	}
	s.downgrades.Add(1)
	ev := DowngradeEvent{
		Time:    time.Now(),
		Dataset: name,
		From:    kind,
		Op:      op,
		Reason:  strings.Join(reasons, "; "),
	}
	s.recordDowngrade(ev)
	s.log.Warn("index downgraded to naive",
		slog.String("dataset", name),
		slog.String("from", kind.String()),
		slog.String("op", op),
		slog.String("reason", ev.Reason),
		slog.String("request_id", metrics.TraceFrom(parent).ID()))
	return &snapshot{sampler: fb, active: core.KindNaive, monitor: s.newMonitor(name, values, weights)}, nil
}

// Create builds and hosts a dataset. Nil weights mean uniform. The
// inputs are copied; invalid inputs are rejected with the typed core
// errors. If the index build fails the dataset is still created, served
// by the naive fallback.
func (s *Service) Create(ctx context.Context, name string, kind core.Kind, values, weights []float64) (err error) {
	defer s.track(&err)()
	if len(values) == 0 {
		return ErrEmptyDataset
	}
	if weights != nil && len(weights) != len(values) {
		return fmt.Errorf("%w: %d values vs %d weights", core.ErrBadValue, len(values), len(weights))
	}
	s.mu.RLock()
	_, taken := s.datasets[name]
	s.mu.RUnlock()
	if taken {
		return fmt.Errorf("%w: %q", ErrDatasetExists, name)
	}
	vcopy := append([]float64(nil), values...)
	var wcopy []float64
	if weights == nil {
		wcopy = make([]float64, len(values))
		for i := range wcopy {
			wcopy[i] = 1
		}
	} else {
		wcopy = append([]float64(nil), weights...)
	}
	snap, err := s.build(ctx, name, kind, vcopy, wcopy, "build")
	if err != nil {
		return err
	}
	ds := &dataset{name: name, requested: kind, values: vcopy, weights: wcopy, snap: snap}
	if ds.pool = s.newPool(name); ds.pool != nil {
		ds.pool.Bind(snap.sampler)
	}
	ds.est = s.newDistinct(vcopy)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.datasets[name]; ok {
		if ds.pool != nil {
			ds.pool.Close()
		}
		return fmt.Errorf("%w: %q", ErrDatasetExists, name)
	}
	s.datasets[name] = ds
	return nil
}

// Sample draws k independent weighted samples from the dataset's
// S ∩ [lo, hi], honouring ctx. The returned slice is freshly allocated
// and owned by the caller; the query's internal temporaries come from a
// pooled arena, so a steady request load recycles scratch instead of
// allocating per query. Use SampleInto to also recycle the result
// buffer.
func (s *Service) Sample(ctx context.Context, r *core.Rand, name string, lo, hi float64, k int) (out []float64, err error) {
	defer s.track(&err)()
	ds, err := s.lookup(name)
	if err != nil {
		return nil, err
	}
	if ds.tbl != nil {
		var dst []float64
		if k > 0 {
			dst = make([]float64, 0, k)
		}
		return s.mutableSampleInto(ctx, ds, r, lo, hi, k, dst)
	}
	var dst []float64
	if k > 0 {
		dst = make([]float64, 0, k)
	}
	out, err = s.staticSampleInto(ctx, ds, r, lo, hi, k, dst)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SampleInto is Sample appending into caller-owned dst — the
// zero-steady-state-allocation path the sharded coordinator and HTTP
// front end run per request. dst is returned unchanged on error, so a
// pooled buffer can be recycled regardless of outcome.
func (s *Service) SampleInto(ctx context.Context, r *core.Rand, name string, lo, hi float64, k int, dst []float64) (out []float64, err error) {
	// Inline (open-coded) form of track: a deferred literal here stays
	// off the heap, where the returned closure costs an allocation per
	// request on the hottest read path.
	s.requests.Add(1)
	defer func() {
		if err != nil {
			s.failures.Add(1)
		}
	}()
	ds, err := s.lookup(name)
	if err != nil {
		return dst, err
	}
	if ds.tbl != nil {
		return s.mutableSampleInto(ctx, ds, r, lo, hi, k, dst)
	}
	return s.staticSampleInto(ctx, ds, r, lo, hi, k, dst)
}

// PoolHot reports whether a WR request for (lo, hi, k) against the
// named dataset would be satisfied entirely from the sample pool.
// It never consumes inventory, but it does record demand (samplepool
// Probe): the server probes every candidate request on its admission
// path, so probing is what warms the windows traffic asks for even
// while responses flow through the coalescer, which never consumes
// pooled draws. A hot request then skips the coalescer, because the
// pooled path is already cheaper than the coalescing rendezvous. For
// mutable datasets the probe additionally requires the table to be pure
// (no overlay deltas), mirroring the gate on the pooled serving path.
func (s *Service) PoolHot(name string, lo, hi float64, k int) bool {
	ds, err := s.lookup(name)
	if err != nil || ds.pool == nil {
		return false
	}
	if ds.tbl != nil {
		base, ok := ds.tbl.PureBase()
		if !ok {
			return false
		}
		return ds.pool.Probe(base, lo, hi, k)
	}
	snap := ds.snapshot()
	if snap == nil || snap.sampler == nil {
		return false
	}
	return ds.pool.Probe(snap.sampler, lo, hi, k)
}

// PoolStats returns a point-in-time snapshot of the named dataset's
// sample-pool counters. The zero Stats is returned when pooling is
// disabled or the dataset does not exist.
func (s *Service) PoolStats(name string) samplepool.Stats {
	ds, err := s.lookup(name)
	if err != nil || ds.pool == nil {
		return samplepool.Stats{}
	}
	return ds.pool.Snapshot()
}

// WriteLagSeconds reports the largest estimated ingest drain lag across
// the service's mutable datasets, in seconds (0 when every delta log is
// empty, no rebuild has produced a rate signal yet, or no dataset is
// mutable). The serving layer quotes it as the write path's Retry-After
// under backpressure.
func (s *Service) WriteLagSeconds() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var lag float64
	for _, ds := range s.datasets {
		if ds.tbl != nil {
			if l := ds.tbl.WriteLagSeconds(); l > lag {
				lag = l
			}
		}
	}
	return lag
}

// staticSampleInto is the WR read path for static datasets, shared by
// Sample and SampleInto. When pooling is enabled it first consumes
// pre-drawn samples for the snapshot's exact position window — a full
// pool hit skips the kernel (and the arena checkout) entirely — and
// draws any remainder from the live kernel; pooled and kernel draws
// come from the identical frozen distribution, so the combined response
// is distributed exactly like k kernel draws (see internal/samplepool).
func (s *Service) staticSampleInto(ctx context.Context, ds *dataset, r *core.Rand, lo, hi float64, k int, dst []float64) (out []float64, err error) {
	snap := ds.snapshot()
	end := metrics.TraceFrom(ctx).StartSpan("service.sample")
	start := time.Now()
	out = dst
	took := 0
	if ds.pool != nil && k > 0 {
		if err = ctx.Err(); err != nil {
			end()
			return dst, err
		}
		out, took = ds.pool.TakeInto(snap.sampler, lo, hi, k, out)
		if took == k {
			s.observeLatency(opSample, snap.active, time.Since(start).Seconds())
			end()
			snap.monitor.Fold(lo, hi, out[len(dst):], false)
			return out, nil
		}
	}
	sc := core.GetScratch()
	defer core.PutScratch(sc)
	err = s.guard(snap.active, "sample", func() error {
		var e error
		out, e = snap.sampler.SampleContextInto(ctx, r, lo, hi, k-took, out, sc)
		return e
	})
	s.observeLatency(opSample, snap.active, time.Since(start).Seconds())
	end()
	if err != nil {
		return dst, err
	}
	snap.monitor.Fold(lo, hi, out[len(dst):], false)
	return out, nil
}

// SampleWoR draws a uniformly random size-k subset of S ∩ [lo, hi]
// without replacement (uniform-weight regime), honouring ctx. Like
// Sample it recycles its internal temporaries from a pooled arena; use
// SampleWoRInto to also recycle the result buffer.
func (s *Service) SampleWoR(ctx context.Context, r *core.Rand, name string, lo, hi float64, k int) (out []float64, err error) {
	defer s.track(&err)()
	ds, err := s.lookup(name)
	if err != nil {
		return nil, err
	}
	if ds.tbl != nil {
		var dst []float64
		if k > 0 {
			dst = make([]float64, 0, k)
		}
		return s.mutableWoRInto(ctx, ds, r, lo, hi, k, dst)
	}
	snap := ds.snapshot()
	end := metrics.TraceFrom(ctx).StartSpan("service.wor")
	start := time.Now()
	sc := core.GetScratch()
	defer core.PutScratch(sc)
	err = s.guard(snap.active, "wor", func() error {
		var e error
		out, e = snap.sampler.SampleWoRContextInto(ctx, r, lo, hi, k, make([]float64, 0, k), sc)
		return e
	})
	s.observeLatency(opWoR, snap.active, time.Since(start).Seconds())
	end()
	if err != nil {
		return nil, err
	}
	snap.monitor.Fold(lo, hi, out, true)
	return out, nil
}

// SampleWoRInto is SampleWoR appending into caller-owned dst. dst is
// returned unchanged on error.
func (s *Service) SampleWoRInto(ctx context.Context, r *core.Rand, name string, lo, hi float64, k int, dst []float64) (out []float64, err error) {
	s.requests.Add(1)
	defer func() {
		if err != nil {
			s.failures.Add(1)
		}
	}()
	ds, err := s.lookup(name)
	if err != nil {
		return dst, err
	}
	if ds.tbl != nil {
		return s.mutableWoRInto(ctx, ds, r, lo, hi, k, dst)
	}
	snap := ds.snapshot()
	end := metrics.TraceFrom(ctx).StartSpan("service.wor")
	start := time.Now()
	sc := core.GetScratch()
	defer core.PutScratch(sc)
	out = dst
	err = s.guard(snap.active, "wor", func() error {
		var e error
		out, e = snap.sampler.SampleWoRContextInto(ctx, r, lo, hi, k, out, sc)
		return e
	})
	s.observeLatency(opWoR, snap.active, time.Since(start).Seconds())
	end()
	if err != nil {
		return dst, err
	}
	snap.monitor.Fold(lo, hi, out[len(dst):], true)
	return out, nil
}

// RangeWeight returns the total weight of S ∩ [lo, hi] in O(log n). The
// sharded coordinator calls it per shard per query to split the sample
// budget multinomially over in-range shard weights.
func (s *Service) RangeWeight(ctx context.Context, name string, lo, hi float64) (w float64, err error) {
	s.requests.Add(1)
	defer func() {
		if err != nil {
			s.failures.Add(1)
		}
	}()
	ds, err := s.lookup(name)
	if err != nil {
		return 0, err
	}
	if err = ctx.Err(); err != nil {
		return 0, err
	}
	snap := ds.snapshot()
	err = s.guard(snap.active, "rangeweight", func() error {
		if ds.tbl != nil {
			w = ds.tbl.RangeWeight(lo, hi)
			return nil
		}
		w = snap.sampler.RangeWeight(lo, hi)
		return nil
	})
	if err != nil {
		return 0, err
	}
	return w, nil
}

// Count returns |S ∩ [lo, hi]|.
func (s *Service) Count(ctx context.Context, name string, lo, hi float64) (n int, err error) {
	defer s.track(&err)()
	ds, err := s.lookup(name)
	if err != nil {
		return 0, err
	}
	if err = ctx.Err(); err != nil {
		return 0, err
	}
	snap := ds.snapshot()
	err = s.guard(snap.active, "count", func() error {
		if ds.tbl != nil {
			n = ds.tbl.Count(lo, hi)
			return nil
		}
		n = snap.sampler.Count(lo, hi)
		return nil
	})
	if err != nil {
		return 0, err
	}
	return n, nil
}

// Insert adds an element and swaps in a rebuilt snapshot. Readers keep
// the old snapshot until the new one is fully built; on any rebuild
// error the update is rejected and the dataset is unchanged (except
// that build failures of the requested kind degrade to a naive snapshot
// that includes the update).
func (s *Service) Insert(ctx context.Context, name string, value, weight float64) (err error) {
	defer s.track(&err)()
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return fmt.Errorf("%w: value = %v", core.ErrBadValue, value)
	}
	if !(weight > 0) || math.IsInf(weight, 1) {
		return fmt.Errorf("%w: weight = %v", core.ErrBadWeight, weight)
	}
	ds, err := s.lookup(name)
	if err != nil {
		return err
	}
	if ds.tbl != nil {
		if err = mapIngestErr(ds.tbl.Insert(ctx, value, weight)); err != nil {
			return err
		}
		// Accepted into the overlay: fold into the stream sample so
		// distinct estimates see it before the next rebuild.
		ds.est.noteInsert(value)
		return nil
	}
	ds.updMu.Lock()
	defer ds.updMu.Unlock()
	if err = ctx.Err(); err != nil {
		return err
	}
	nv := append(append([]float64(nil), ds.values...), value)
	nw := append(append([]float64(nil), ds.weights...), weight)
	return s.swapIn(ctx, ds, nv, nw)
}

// Delete removes one element with the given value and swaps in a
// rebuilt snapshot.
func (s *Service) Delete(ctx context.Context, name string, value float64) (err error) {
	defer s.track(&err)()
	ds, err := s.lookup(name)
	if err != nil {
		return err
	}
	if ds.tbl != nil {
		return mapIngestErr(ds.tbl.Delete(ctx, value))
	}
	ds.updMu.Lock()
	defer ds.updMu.Unlock()
	if err = ctx.Err(); err != nil {
		return err
	}
	at := -1
	for i, v := range ds.values {
		if v == value {
			at = i
			break
		}
	}
	if at < 0 {
		return fmt.Errorf("%w: %v", ErrValueNotFound, value)
	}
	if len(ds.values) == 1 {
		return ErrEmptyDataset
	}
	nv := make([]float64, 0, len(ds.values)-1)
	nw := make([]float64, 0, len(ds.weights)-1)
	nv = append(append(nv, ds.values[:at]...), ds.values[at+1:]...)
	nw = append(append(nw, ds.weights[:at]...), ds.weights[at+1:]...)
	return s.swapIn(ctx, ds, nv, nw)
}

// swapIn rebuilds from the new master arrays and publishes the snapshot
// (copy-on-rebuild: readers never see intermediate state). Caller holds
// ds.updMu.
func (s *Service) swapIn(ctx context.Context, ds *dataset, nv, nw []float64) error {
	snap, err := s.build(ctx, ds.name, ds.requested, nv, nw, "rebuild")
	if err != nil {
		return err
	}
	old := ds.snapshot()
	ds.values, ds.weights = nv, nw
	ds.publish(snap)
	if ds.pool != nil {
		// Rebind before the old snapshot is torn down: every pooled
		// draw for the retired sampler is purged, and the identity
		// check in TakeInto guarantees requests racing the swap can
		// only consume draws for the sampler they actually serve from.
		ds.pool.Bind(snap.sampler)
	}
	if ds.est != nil {
		ds.est.rebuild(nv)
	}
	s.rebuilds.Add(1)
	if old != nil && old.sampler != nil {
		// Retired from serving: drop any memoized cover decompositions
		// so a stale cache can never answer for the mutated dataset.
		old.sampler.InvalidateCovers()
	}
	return nil
}

// Health returns the current counters and per-dataset states.
func (s *Service) Health() Health {
	h := Health{
		Requests:        s.requests.Value(),
		Failures:        s.failures.Value(),
		PanicsContained: s.panicsContained.Value(),
		Downgrades:      s.downgrades.Value(),
		Rebuilds:        s.rebuilds.Value(),
	}
	if s.opts.Mirror != nil {
		h.EMFaults = s.opts.Mirror.FaultsInjected()
	}
	s.mu.RLock()
	names := make([]string, 0, len(s.datasets))
	for n := range s.datasets {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ds := s.datasets[n]
		snap := ds.snapshot()
		dh := DatasetHealth{
			Name:      n,
			Requested: ds.requested,
			Active:    snap.active,
			Degraded:  snap.active != ds.requested,
			Len:       snap.sampler.Len(),
		}
		if ds.tbl != nil {
			dh.Mutable = true
			dh.Len = ds.tbl.Len()
			dh.LogDepth = ds.tbl.Stats().LogDepth
		}
		h.Datasets = append(h.Datasets, dh)
	}
	s.mu.RUnlock()
	return h
}

// Downgrades returns a copy of the retained fallback events, oldest
// first. At most Options.DowngradeEventCap events are retained; older
// ones are evicted (the Health.Downgrades counter is unaffected).
func (s *Service) Downgrades() []DowngradeEvent {
	s.evMu.Lock()
	defer s.evMu.Unlock()
	out := make([]DowngradeEvent, 0, s.evLen)
	for i := 0; i < s.evLen; i++ {
		out = append(out, s.evBuf[(s.evNext-s.evLen+i+len(s.evBuf))%len(s.evBuf)])
	}
	return out
}
