package service

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/ingest"
)

// ErrUnknownDataset is returned for operations naming a dataset the
// service does not host.
var ErrUnknownDataset = errors.New("service: unknown dataset")

// ErrDatasetExists is returned by Create for a name already in use.
var ErrDatasetExists = errors.New("service: dataset already exists")

// ErrValueNotFound is returned by Delete when no element has the given
// value.
var ErrValueNotFound = errors.New("service: value not found")

// InternalError reports an internal invariant panic that was contained
// at the service boundary: the process keeps serving, the failing
// request gets this typed error, and the structure kind and operation
// identify the failing component. It is the only way a panic from the
// structure packages crosses the service boundary.
type InternalError struct {
	Kind  core.Kind // structure kind the operation ran against
	Op    string    // "build", "rebuild", "sample", "wor", "count", ...
	Value any       // recovered panic value
	Stack string    // stack at the recovery point, for the health log
}

// Error implements error.
func (e *InternalError) Error() string {
	return fmt.Sprintf("service: contained panic in %s on %v sampler: %v", e.Op, e.Kind, e.Value)
}

// IsTyped reports whether err belongs to the service's documented error
// vocabulary: service sentinels, *InternalError, the typed core errors,
// and context cancellation. The chaos tests use it to prove no raw
// error ever leaks through the boundary.
func IsTyped(err error) bool {
	if err == nil {
		return false
	}
	var ie *InternalError
	return errors.As(err, &ie) ||
		errors.Is(err, ErrUnknownDataset) ||
		errors.Is(err, ErrDatasetExists) ||
		errors.Is(err, ErrValueNotFound) ||
		errors.Is(err, ErrEmptyDataset) ||
		errors.Is(err, ErrNotMutable) ||
		errors.Is(err, ingest.ErrBackpressure) ||
		errors.Is(err, ingest.ErrClosed) ||
		errors.Is(err, core.ErrBadWeight) ||
		errors.Is(err, core.ErrBadValue) ||
		errors.Is(err, core.ErrBadRange) ||
		errors.Is(err, core.ErrSampleTooLarge) ||
		errors.Is(err, core.ErrEmptyRange) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}
