package service

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// MultiJob is one request in a batched sampling pass. Each job keeps
// its own rng stream (R) and result buffer (Dst/Out), so batching is
// invisible in the output: a job's samples are exactly what the
// equivalent SampleInto / SampleWoRInto call would have produced with
// the same stream. Only the dataset lookup, the snapshot acquisition
// and the scratch arena are shared across the batch.
type MultiJob struct {
	R      *core.Rand
	Lo, Hi float64
	K      int
	WoR    bool
	// Dst is the caller-owned buffer the samples are appended to; Out
	// is the extended slice (Out == Dst on error).
	Dst []float64
	Out []float64
	Err error
}

// SampleMulti executes jobs against one snapshot of the named dataset:
// a single lookup, snapshot acquisition and pooled arena serve the
// whole batch, amortising the per-request setup the scalar paths pay
// per call. Per-job accounting (request/failure counters, latency
// histograms, quality folds, panic containment) is identical to the
// scalar paths. The returned error is non-nil only when the dataset
// lookup itself fails, in which case every job carries it too.
//
// All jobs see the same snapshot — the batch is one linearization
// point, where sequential scalar calls could straddle a concurrent
// rebuild. Samples are still exact for the snapshot they came from.
func (s *Service) SampleMulti(ctx context.Context, name string, jobs []*MultiJob) error {
	if len(jobs) == 0 {
		return nil
	}
	ds, err := s.lookup(name)
	if err != nil {
		for _, j := range jobs {
			s.requests.Add(1)
			s.failures.Add(1)
			j.Out, j.Err = j.Dst, err
		}
		return err
	}
	snap := ds.snapshot()
	end := metrics.TraceFrom(ctx).StartSpan("service.multi")
	defer end()
	sc := core.GetScratch()
	defer core.PutScratch(sc)
	for _, j := range jobs {
		s.requests.Add(1)
		op, opName := opSample, "sample"
		if j.WoR {
			op, opName = opWoR, "wor"
		}
		start := time.Now()
		j.Out = j.Dst
		jerr := s.guard(snap.active, opName, func() error {
			if ds.tbl != nil {
				// Mutable dataset: draw from the live union (base +
				// overlay, tombstones masked), like the scalar paths.
				if e := ctx.Err(); e != nil {
					return e
				}
				if j.WoR {
					var e error
					j.Out, e = ds.tbl.SampleWoRInto(j.R, j.Lo, j.Hi, j.K, j.Out, sc)
					return e
				}
				var ok bool
				j.Out, ok = ds.tbl.SampleInto(j.R, j.Lo, j.Hi, j.K, j.Out, sc)
				if !ok {
					if verr := core.ValidateRange(j.Lo, j.Hi); verr != nil {
						return verr
					}
					return core.ErrEmptyRange
				}
				return nil
			}
			var e error
			if j.WoR {
				j.Out, e = snap.sampler.SampleWoRContextInto(ctx, j.R, j.Lo, j.Hi, j.K, j.Out, sc)
			} else {
				j.Out, e = snap.sampler.SampleContextInto(ctx, j.R, j.Lo, j.Hi, j.K, j.Out, sc)
			}
			return e
		})
		s.observeLatency(op, snap.active, time.Since(start).Seconds())
		if jerr != nil {
			j.Out, j.Err = j.Dst, jerr
			s.failures.Add(1)
			continue
		}
		mon := snap.monitor
		if ds.tbl != nil {
			mon = ds.liveMon
		}
		mon.Fold(j.Lo, j.Hi, j.Out[len(j.Dst):], j.WoR)
	}
	return nil
}
