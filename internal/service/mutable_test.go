package service

import (
	"context"
	"errors"
	"math"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/em"
	"repro/internal/ingest"
	"repro/internal/metrics"
	"repro/internal/stats"
)

func newMutableService(t *testing.T, n int, mo MutableOptions) *Service {
	t.Helper()
	s := New(Options{Quality: metrics.UniformityOptions{Stride: 1}})
	t.Cleanup(s.Close)
	ws := make([]float64, n)
	for i := range ws {
		ws[i] = float64(1 + i%4)
	}
	if err := s.CreateMutable(context.Background(), "d", core.KindChunked, seq(n), ws, mo); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCreateMutableWritesVisibleImmediately(t *testing.T) {
	s := newMutableService(t, 100, MutableOptions{RebuildThreshold: 1 << 20})
	ctx := context.Background()
	r := core.NewRand(1)

	// Insert outside the original span: countable and sampleable at
	// once, no rebuild needed (threshold is unreachable).
	if err := s.Insert(ctx, "d", 500.5, 3); err != nil {
		t.Fatal(err)
	}
	if n, err := s.Count(ctx, "d", 500, 501); err != nil || n != 1 {
		t.Fatalf("Count after insert = %d, %v", n, err)
	}
	out, err := s.Sample(ctx, r, "d", 500, 501, 5)
	if err != nil || len(out) != 5 {
		t.Fatalf("Sample after insert: %v, %d", err, len(out))
	}
	for _, v := range out {
		if v != 500.5 {
			t.Fatalf("sampled %v, want the fresh insert", v)
		}
	}

	// Delete: masked immediately.
	if err := s.Delete(ctx, "d", 42); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.Count(ctx, "d", 42, 42); n != 0 {
		t.Fatal("deleted value still counted")
	}
	for i := 0; i < 50; i++ {
		out, err := s.Sample(ctx, r, "d", 40, 44, 4)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range out {
			if v == 42 {
				t.Fatal("sampled a deleted value")
			}
		}
	}
	if w, _ := s.RangeWeight(ctx, "d", 42, 42); w != 0 {
		t.Fatalf("RangeWeight of deleted value = %v", w)
	}

	// WoR over the mutated union.
	wor, err := s.SampleWoR(ctx, r, "d", 40, 44, 4)
	if err != nil || len(wor) != 4 {
		t.Fatalf("SampleWoR: %v, %d", err, len(wor))
	}
	seen := map[float64]bool{}
	for _, v := range wor {
		if v == 42 || seen[v] {
			t.Fatalf("WoR drew %v (deleted or duplicate)", v)
		}
		seen[v] = true
	}

	h := s.Health()
	if len(h.Datasets) != 1 || !h.Datasets[0].Mutable {
		t.Fatalf("health missing mutable flag: %+v", h.Datasets)
	}
	if h.Datasets[0].Len != 100 { // +1 insert, -1 delete
		t.Fatalf("live len = %d, want 100", h.Datasets[0].Len)
	}
	if h.Datasets[0].LogDepth == 0 {
		t.Fatal("delta log depth should be nonzero before any rebuild")
	}

	// Flush folds the log; content is preserved.
	if err := s.Flush(ctx, "d"); err != nil {
		t.Fatal(err)
	}
	st, err := s.IngestStats("d")
	if err != nil || st.LogDepth != 0 || st.OverlayLen != 0 || st.Tombstones != 0 {
		t.Fatalf("post-flush stats: %+v, %v", st, err)
	}
	if n, _ := s.Count(ctx, "d", 42, 42); n != 0 {
		t.Fatal("delete lost across rebuild")
	}
	if n, _ := s.Count(ctx, "d", 500, 501); n != 1 {
		t.Fatal("insert lost across rebuild")
	}
}

func TestMutableErrorMapping(t *testing.T) {
	s := newMutableService(t, 3, MutableOptions{RebuildThreshold: 1 << 20})
	ctx := context.Background()

	if err := s.Delete(ctx, "d", 99); !errors.Is(err, ErrValueNotFound) || !IsTyped(err) {
		t.Errorf("missing delete: %v", err)
	}
	if err := s.Delete(ctx, "d", 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(ctx, "d", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(ctx, "d", 2); !errors.Is(err, ErrEmptyDataset) || !IsTyped(err) {
		t.Errorf("last-element delete: %v", err)
	}
	if err := s.Insert(ctx, "d", math.NaN(), 1); !errors.Is(err, core.ErrBadValue) {
		t.Errorf("NaN insert: %v", err)
	}
	if err := s.BulkLoad(ctx, "d", []float64{10, 11}, nil); err != nil {
		t.Fatalf("bulk load: %v", err)
	}
	if n, _ := s.Count(ctx, "d", 10, 11); n != 2 {
		t.Fatalf("bulk load not visible: %d", n)
	}

	// Static datasets reject the mutable-only surface.
	if err := s.Create(ctx, "static", core.KindChunked, seq(10), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.BulkLoad(ctx, "static", []float64{1}, nil); !errors.Is(err, ErrNotMutable) || !IsTyped(err) {
		t.Errorf("static bulk load: %v", err)
	}
	if err := s.Flush(ctx, "static"); !errors.Is(err, ErrNotMutable) {
		t.Errorf("static flush: %v", err)
	}
	if s.Mutable("static") || !s.Mutable("d") || s.Mutable("nope") {
		t.Error("Mutable() misreports")
	}

	s.Close()
	if err := s.Insert(ctx, "d", 1, 1); !errors.Is(err, ingest.ErrClosed) || !IsTyped(err) {
		t.Errorf("insert after close: %v", err)
	}
}

// TestMutableCoverCacheRegression is the PR-5 cover-decomposition cache
// regression: warm the decomposition cache with repeated identical
// range queries, mutate the dataset, and verify sampling reflects the
// mutation both immediately (overlay/tombstone path) and after the
// rebuild swap (fresh base, retired base's caches invalidated). The
// static-update path (snapshot swap via Insert/Delete rebuild) is
// exercised too.
func TestMutableCoverCacheRegression(t *testing.T) {
	ctx := context.Background()
	r := core.NewRand(7)

	for _, kind := range []core.Kind{core.KindChunked, core.KindAliasAug} {
		s := New(Options{})
		t.Cleanup(s.Close)
		if err := s.CreateMutable(ctx, "m", kind, seq(512), nil, MutableOptions{RebuildThreshold: 1 << 20}); err != nil {
			t.Fatal(err)
		}
		// Warm: the same range query repeatedly, so the cover
		// decomposition for [100, 200] is memoized.
		for i := 0; i < 64; i++ {
			if _, err := s.Sample(ctx, r, "m", 100, 200, 8); err != nil {
				t.Fatal(err)
			}
		}
		// Mutate inside the warmed range.
		for v := 150.0; v < 160; v++ {
			if err := s.Delete(ctx, "m", v); err != nil {
				t.Fatal(err)
			}
		}
		check := func(stage string) {
			t.Helper()
			for i := 0; i < 200; i++ {
				out, err := s.Sample(ctx, r, "m", 100, 200, 8)
				if err != nil {
					t.Fatalf("%s/%v: %v", stage, kind, err)
				}
				for _, v := range out {
					if v >= 150 && v < 160 {
						t.Fatalf("%s/%v: sampled deleted value %v", stage, kind, v)
					}
				}
			}
			if n, _ := s.Count(ctx, "m", 100, 200); n != 91 {
				t.Fatalf("%s/%v: count = %d, want 91", stage, kind, n)
			}
		}
		check("pre-rebuild")
		if err := s.Flush(ctx, "m"); err != nil {
			t.Fatal(err)
		}
		check("post-rebuild")

		// Static path: swapIn must invalidate the retired snapshot.
		if err := s.Create(ctx, "st", kind, seq(256), nil); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 64; i++ {
			if _, err := s.Sample(ctx, r, "st", 50, 99, 4); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Delete(ctx, "st", 75); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			out, err := s.Sample(ctx, r, "st", 50, 99, 4)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range out {
				if v == 75 {
					t.Fatalf("%v: static snapshot served deleted value", kind)
				}
			}
		}
	}
}

// TestMutableChurnQualityUnderFaults is the PR's acceptance gate at the
// service layer: with EM faults injected into every rebuild and a
// background writer sustaining at least 1/8 of the read rate, the
// dynamic-expectations uniformity monitor — folding every served
// sample against the instantaneous dataset — must stay below its
// breach threshold, and a post-churn two-query independence check must
// pass. Runs under -race in CI.
func TestMutableChurnQualityUnderFaults(t *testing.T) {
	dev, err := em.NewDevice(64, 4096)
	if err != nil {
		t.Fatal(err)
	}
	dev.SetFaultPolicy(&em.FaultPolicy{ReadFailProb: 0.05, WriteFailProb: 0.05, Seed: 3})
	s := New(Options{
		Mirror:  dev,
		Retry:   em.RetryPolicy{MaxAttempts: 8, BaseDelay: 10 * time.Microsecond, MaxDelay: 100 * time.Microsecond},
		Quality: metrics.UniformityOptions{Stride: 1, MinFolded: 512},
	})
	defer s.Close()
	ctx := context.Background()
	const n = 1000
	ws := make([]float64, n)
	for i := range ws {
		ws[i] = float64(1 + i%4)
	}
	if err := s.CreateMutable(ctx, "d", core.KindChunked, seq(n), ws, MutableOptions{RebuildThreshold: 64, Seed: 9}); err != nil {
		t.Fatal(err)
	}

	var writes atomic.Int64
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		wr := core.NewRand(31)
		var inserted []float64
		next := 10000.0
		for {
			select {
			case <-stop:
				return
			default:
			}
			var err error
			if wr.Bernoulli(0.55) || len(inserted) == 0 {
				v := float64(wr.Intn(n)) + 0.5
				if wr.Bernoulli(0.2) {
					v = next // occasionally out of the original span
					next++
				}
				if err = s.Insert(ctx, "d", v, 1+wr.Float64()*3); err == nil {
					inserted = append(inserted, v)
				}
			} else {
				v := inserted[len(inserted)-1]
				if err = s.Delete(ctx, "d", v); err == nil {
					inserted = inserted[:len(inserted)-1]
				}
			}
			if err == nil {
				writes.Add(1)
			} else if !IsTyped(err) {
				t.Errorf("untyped write error: %v", err)
				return
			}
		}
	}()

	// Reader: paced so the writer sustains >= reads/8 successful ops —
	// structurally above the 10%-of-read-QPS acceptance bar.
	r := core.NewRand(5)
	const reads = 1600
	deadline := time.Now().Add(20 * time.Second)
	buf := make([]float64, 0, 8)
	for i := 0; i < reads; i++ {
		for writes.Load()*8 < int64(i) && time.Now().Before(deadline) {
			time.Sleep(5 * time.Microsecond)
		}
		lo := float64(r.Intn(n - 100))
		hi := lo + 50 + float64(r.Intn(200))
		var err error
		buf = buf[:0]
		if i%5 == 4 {
			buf, err = s.SampleWoRInto(ctx, r, "d", lo, hi, 4, buf)
		} else {
			buf, err = s.SampleInto(ctx, r, "d", lo, hi, 8, buf)
		}
		if err != nil && !IsTyped(err) {
			t.Fatalf("untyped read error: %v", err)
		}
	}
	close(stop)
	<-writerDone

	w := writes.Load()
	if w*8 < reads {
		t.Fatalf("writer too slow: %d writes vs %d reads", w, reads)
	}
	if dev.FaultsInjected() == 0 {
		t.Fatal("EM fault policy injected nothing; the gate did not run under faults")
	}
	s.mu.RLock()
	mon := s.datasets["d"].liveMon
	s.mu.RUnlock()
	stat, crit, folded := mon.Snapshot()
	if folded < 512 {
		t.Fatalf("monitor folded only %d samples", folded)
	}
	if crit > 0 && stat/crit > 1 {
		t.Fatalf("uniformity breached under churn: stat %v critical %v (folded %d)", stat, crit, folded)
	}
	t.Logf("churn gate: %d writes / %d reads, %d EM faults, quality %.3f over %d folded",
		w, reads, dev.FaultsInjected(), mon.Quality(), folded)

	// Cross-query independence on the settled state: bucket pairs of
	// successive single-draw queries over a fixed range and chi-square
	// the joint distribution against the product of its marginals.
	if err := s.Flush(ctx, "d"); err != nil {
		t.Fatal(err)
	}
	const bins = 4
	lo, hi := 100.0, 699.0
	edges := make([]float64, bins-1)
	w0, _ := s.RangeWeight(ctx, "d", lo, hi)
	if !(w0 > 0) {
		t.Fatal("empty independence range")
	}
	// Equal-weight bin edges from the live data.
	vals, wts, err := s.LiveData("d")
	if err != nil {
		t.Fatal(err)
	}
	cum, target := 0.0, w0/bins
	bi := 0
	type vw struct{ v, w float64 }
	in := make([]vw, 0, len(vals))
	for i, v := range vals {
		if v >= lo && v <= hi {
			in = append(in, vw{v, wts[i]})
		}
	}
	sort.Slice(in, func(a, b int) bool { return in[a].v < in[b].v })
	for _, e := range in {
		cum += e.w
		if bi < bins-1 && cum >= target*float64(bi+1) {
			edges[bi] = e.v
			bi++
		}
	}
	binOf := func(v float64) int {
		for i, e := range edges {
			if v <= e {
				return i
			}
		}
		return bins - 1
	}
	const pairs = 4000
	joint := make([]int, bins*bins)
	mi := make([]int, bins)
	mj := make([]int, bins)
	for p := 0; p < pairs; p++ {
		a, err := s.Sample(ctx, r, "d", lo, hi, 1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.Sample(ctx, r, "d", lo, hi, 1)
		if err != nil {
			t.Fatal(err)
		}
		i, j := binOf(a[0]), binOf(b[0])
		joint[i*bins+j]++
		mi[i]++
		mj[j]++
	}
	exp := make([]float64, bins*bins)
	for i := 0; i < bins; i++ {
		for j := 0; j < bins; j++ {
			exp[i*bins+j] = float64(mi[i]) * float64(mj[j]) / pairs
		}
	}
	chi := 0.0
	for c, o := range joint {
		if exp[c] < 5 {
			continue
		}
		d := float64(o) - exp[c]
		chi += d * d / exp[c]
	}
	if c := stats.ChiSquareCritical((bins-1)*(bins-1), 1e-6); chi > c {
		t.Fatalf("cross-query dependence: chi2 %v > critical %v", chi, c)
	}
}
