package service

import (
	"context"
	"testing"

	"repro/internal/core"
)

// BenchmarkServiceSample measures the hardened single-node request path
// (snapshot read, guard, core query) for the bench-json pipeline.
func BenchmarkServiceSample(b *testing.B) {
	n := 1 << 16
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = float64(i)
		weights[i] = 1 + float64((i*7)%13)
	}
	s := New(Options{})
	ctx := context.Background()
	if err := s.Create(ctx, "bench", core.KindChunked, values, weights); err != nil {
		b.Fatal(err)
	}
	r := core.NewRand(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := s.Sample(ctx, r, "bench", 1000, 50000, 16)
		if err != nil || len(out) != 16 {
			b.Fatal("bad sample")
		}
	}
}

// newMutableBenchService hosts a mutable dataset with `dirty` unflushed
// overlay writes on top of an n-element base.
func newMutableBenchService(b *testing.B, n, dirty int) *Service {
	b.Helper()
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = float64(i)
		weights[i] = 1 + float64((i*7)%13)
	}
	s := New(Options{})
	b.Cleanup(s.Close)
	ctx := context.Background()
	mo := MutableOptions{RebuildThreshold: 1 << 20} // rebuilds off: state is pinned
	if err := s.CreateMutable(ctx, "bench", core.KindChunked, values, weights, mo); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < dirty; i++ {
		if err := s.Insert(ctx, "bench", float64(i)+0.5, 1); err != nil {
			b.Fatal(err)
		}
	}
	if dirty == 0 {
		if err := s.Flush(ctx, "bench"); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

// BenchmarkMutableServiceSampleInto measures the mutable-serving read
// path in the pure state (ingest machinery attached, overlay empty):
// the draw must ride the base's zero-alloc hot path.
func BenchmarkMutableServiceSampleInto(b *testing.B) {
	s := newMutableBenchService(b, 1<<16, 0)
	ctx := context.Background()
	r := core.NewRand(1)
	dst := make([]float64, 0, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := s.SampleInto(ctx, r, "bench", 1000, 50000, 16, dst[:0])
		if err != nil || len(out) != 16 {
			b.Fatal("bad sample")
		}
	}
}

// BenchmarkMutableServiceSampleIntoOverlay measures the same path with
// a live overlay (1024 unflushed writes): every draw pays the
// weight-proportional base/overlay split.
func BenchmarkMutableServiceSampleIntoOverlay(b *testing.B) {
	s := newMutableBenchService(b, 1<<16, 1024)
	ctx := context.Background()
	r := core.NewRand(1)
	dst := make([]float64, 0, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := s.SampleInto(ctx, r, "bench", 1000, 50000, 16, dst[:0])
		if err != nil || len(out) != 16 {
			b.Fatal("bad sample")
		}
	}
}
