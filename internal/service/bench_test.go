package service

import (
	"context"
	"testing"

	"repro/internal/core"
)

// BenchmarkServiceSample measures the hardened single-node request path
// (snapshot read, guard, core query) for the bench-json pipeline.
func BenchmarkServiceSample(b *testing.B) {
	n := 1 << 16
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = float64(i)
		weights[i] = 1 + float64((i*7)%13)
	}
	s := New(Options{})
	ctx := context.Background()
	if err := s.Create(ctx, "bench", core.KindChunked, values, weights); err != nil {
		b.Fatal(err)
	}
	r := core.NewRand(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := s.Sample(ctx, r, "bench", 1000, 50000, 16)
		if err != nil || len(out) != 16 {
			b.Fatal("bad sample")
		}
	}
}
