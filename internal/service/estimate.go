package service

import (
	"context"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/estimate"
	"repro/internal/sketch"
)

// Approximate analytics: Estimate answers COUNT/SUM/AVG over a value
// range from the dataset's own independent-sampling read paths
// (Horvitz–Thompson with normal-approximation intervals, see
// internal/estimate), and DISTINCT from per-dataset sketch state — a
// KMV sketch of the published snapshot's values plus an adaptive
// threshold sample (Ting 2018) absorbing values streamed into the
// ingest overlay since that snapshot was built. The sketch state is
// bound to the snapshot-swap lifecycle exactly like the sample pools:
// every path that rebinds a pool (Create, static swapIn, the mutable
// rebuild callback) also rebuilds the sketch from the same element
// arrays, so the base sketch always describes the published base and
// the stream sample exactly the overlay-era inserts.
//
// Deletes cannot leave a KMV sketch, so between a delete and the next
// rebuild the distinct estimate may over-count by the deleted values;
// the rebuild folds them out. COUNT draws are weight-proportional rows,
// so the count estimator is unbiased on uniform-weight data (the
// setting of the monitored q-error bound) and estimates the weight
// fraction otherwise — see DESIGN.md §12.

// defaultEstimateSalt seeds the shared value hasher when the caller
// does not choose one. Every service in a fan-in group must agree on
// the salt (and K) for its sketches to merge; the sharded coordinator
// passes one Options value to every shard, so agreement is automatic.
const defaultEstimateSalt = 0x51f3bd2a64089fc5

// EstimateOptions tunes the per-dataset distinct-count estimator state.
// The zero value (and a nil Options.Estimate) means defaults:
// estimation is always on.
type EstimateOptions struct {
	// K is the KMV sketch capacity; 0 means 1024 (≈6% standard error).
	K int
	// Salt seeds the shared value hasher. Services whose sketches merge
	// at a fan-in must agree; 0 means a fixed default.
	Salt uint64
	// StreamCapacity bounds the adaptive threshold sample absorbing
	// ingest-overlay inserts; 0 means 4·K.
	StreamCapacity int
}

func (o *EstimateOptions) withDefaults() EstimateOptions {
	var c EstimateOptions
	if o != nil {
		c = *o
	}
	if c.K <= 0 {
		c.K = 1024
	}
	if c.Salt == 0 {
		c.Salt = defaultEstimateSalt
	}
	if c.StreamCapacity <= 0 {
		c.StreamCapacity = 4 * c.K
	}
	return c
}

// EstimateRequest asks for one aggregate over [Lo, Hi].
type EstimateRequest struct {
	Op     estimate.Op
	Lo, Hi float64
	// K is the sample budget for count/sum/avg; 0 means 256. Distinct
	// is served from sketch state and consumes no draws.
	K int
	// Conf is the nominal interval coverage; 0 means 0.95.
	Conf float64
}

// distinctState is one dataset's sketch state. base describes the
// element array the current snapshot/base was built from; stream holds
// hashes of values inserted through the ingest path since. A mutex (not
// the dataset's) serialises sketch mutation against view extraction —
// reads only clone/copy, so the section is short.
type distinctState struct {
	cfg EstimateOptions
	h   sketch.Hasher

	mu     sync.Mutex
	base   *sketch.KMV
	stream *estimate.Threshold
}

func (s *Service) newDistinct(values []float64) *distinctState {
	cfg := s.opts.Estimate.withDefaults()
	d := &distinctState{cfg: cfg, h: sketch.NewHasher(cfg.Salt)}
	d.rebuild(values)
	return d
}

// rebuild replaces the base sketch with one over values and resets the
// stream sample — called wherever the dataset publishes a rebuilt
// snapshot (the same sites that rebind the sample pool).
func (d *distinctState) rebuild(values []float64) {
	base, err := sketch.NewKMV(d.cfg.K)
	if err != nil {
		return // unreachable: withDefaults guarantees K ≥ 1
	}
	for _, v := range values {
		base.Add(d.h.HashFloat(v))
	}
	d.mu.Lock()
	d.base = base
	d.stream = estimate.NewThreshold(d.cfg.StreamCapacity)
	d.mu.Unlock()
}

// noteInsert folds one ingested value into the stream sample.
func (d *distinctState) noteInsert(v float64) {
	h := d.h.HashFloat(v)
	d.mu.Lock()
	d.stream.AddHash(h)
	d.mu.Unlock()
}

// views returns a stable snapshot of the sketch state: a clone of the
// base sketch and a copied view of the stream sample.
func (d *distinctState) views() (*sketch.KMV, estimate.View) {
	d.mu.Lock()
	defer d.mu.Unlock()
	base := d.base.Clone()
	v := d.stream.View()
	v.Hashes = append([]uint64(nil), v.Hashes...)
	return base, v
}

// DistinctSketch returns a clone of the named dataset's base KMV sketch
// together with the current view of its ingest-stream threshold sample.
// The sharded coordinator merges the per-shard sketches with sketch
// Merge and unions the stream views at its fan-in.
func (s *Service) DistinctSketch(name string) (*sketch.KMV, estimate.View, error) {
	ds, err := s.lookup(name)
	if err != nil {
		return nil, estimate.View{}, err
	}
	base, v := ds.est.views()
	return base, v, nil
}

// estimateDraws pulls k draws for [lo, hi] through the dataset's
// canonical read path (pools, guards and quality monitors included).
func (s *Service) estimateDraws(ctx context.Context, ds *dataset, r *core.Rand, lo, hi float64, k int) ([]float64, error) {
	if ds.tbl != nil {
		return s.mutableSampleInto(ctx, ds, r, lo, hi, k, nil)
	}
	return s.staticSampleInto(ctx, ds, r, lo, hi, k, nil)
}

// fullRange spans every finite value, so a draw over it is a
// weight-proportional pick from the whole dataset.
const fullRangeLo, fullRangeHi = -math.MaxFloat64, math.MaxFloat64

// Estimate answers one approximate aggregate over the named dataset.
// COUNT additionally scores itself against the exact count (O(log n)
// here) and reports the measured q-error next to the monitored bound.
func (s *Service) Estimate(ctx context.Context, r *core.Rand, name string, req EstimateRequest) (res estimate.Result, err error) {
	defer s.track(&err)()
	ds, err := s.lookup(name)
	if err != nil {
		return res, err
	}
	if err = ctx.Err(); err != nil {
		return res, err
	}
	if req.K <= 0 {
		req.K = 256
	}
	if req.Conf <= 0 || req.Conf >= 1 {
		req.Conf = 0.95
	}
	if req.Op != estimate.OpDistinct {
		if err = core.ValidateRange(req.Lo, req.Hi); err != nil {
			return res, err
		}
	}
	switch req.Op {
	case estimate.OpCount:
		total := ds.snapshot().sampler.Len()
		if ds.tbl != nil {
			total = ds.tbl.Len()
		}
		draws, derr := s.estimateDraws(ctx, ds, r, fullRangeLo, fullRangeHi, req.K)
		if derr != nil {
			return res, derr
		}
		matches := 0
		for _, v := range draws {
			if v >= req.Lo && v <= req.Hi {
				matches++
			}
		}
		res = estimate.Count(total, matches, len(draws), req.Conf)
		var exact int
		if ds.tbl != nil {
			exact = ds.tbl.Count(req.Lo, req.Hi)
		} else {
			exact = ds.snapshot().sampler.Count(req.Lo, req.Hi)
		}
		res.QError = estimate.QError(res.Estimate, float64(exact))
		return res, nil

	case estimate.OpSum, estimate.OpAvg:
		var w float64
		if ds.tbl != nil {
			w = ds.tbl.RangeWeight(req.Lo, req.Hi)
		} else {
			w = ds.snapshot().sampler.RangeWeight(req.Lo, req.Hi)
		}
		if w <= 0 {
			if req.Op == estimate.OpSum {
				return estimate.Sum(0, nil, req.Conf), nil
			}
			return res, core.ErrEmptyRange
		}
		draws, derr := s.estimateDraws(ctx, ds, r, req.Lo, req.Hi, req.K)
		if derr != nil {
			return res, derr
		}
		if req.Op == estimate.OpSum {
			return estimate.Sum(w, draws, req.Conf), nil
		}
		return estimate.Avg(draws, req.Conf), nil

	case estimate.OpDistinct:
		base, view := ds.est.views()
		return estimate.UnionDistinct(req.Conf, estimate.KMVView(base), view), nil
	}
	return res, estimate.ErrBadOp
}
