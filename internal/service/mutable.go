package service

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/metrics"
	"repro/internal/samplepool"
)

// Mutable serving: CreateMutable hosts a dataset behind an ingest.Table
// (delta log + memtable overlay + background rebuilds), so Insert,
// Delete and BulkLoad are visible to sampling immediately instead of
// paying a full O(n log n) rebuild per write. The table's rebuild
// callback routes through the service's own build path, so rebuilds of
// mutable datasets inherit EM mirroring, build budgets, panic
// containment and naive degradation exactly like static rebuilds — and
// every retired base has its cover-decomposition caches invalidated by
// the table before it can go stale.
//
// Quality monitoring switches to dynamic expectations: the per-dataset
// Uniformity monitor is constructed once with a LiveWeight hook that
// queries the table's instantaneous in-range weight (or count, WoR), so
// the chi-squared gate keeps checking the paper's per-state guarantee
// while the dataset changes under traffic.

// ErrNotMutable is returned by write-path operations that require a
// dataset created with CreateMutable (BulkLoad, Flush, IngestStats).
var ErrNotMutable = errors.New("service: dataset is not mutable")

// MutableOptions tunes the ingestion write path of one mutable dataset.
// Zero values mean the ingest package defaults.
type MutableOptions struct {
	// QueueDepth bounds the write queue.
	QueueDepth int
	// RebuildThreshold is the delta-log depth that kicks a background
	// rebuild.
	RebuildThreshold int
	// MaxLag is the delta-log depth past which writes are shed with
	// ingest.ErrBackpressure.
	MaxLag int
	// RebuildInterval additionally rebuilds on a timer when positive.
	RebuildInterval time.Duration
	// Seed drives overlay treap priorities (structural only).
	Seed uint64
}

// mapIngestErr translates ingest sentinels into the service's error
// vocabulary: deleting the last live element maps to ErrEmptyDataset (a
// dataset never becomes empty), absent values map to ErrValueNotFound.
// Backpressure and closure pass through as ingest sentinels — the HTTP
// layer maps them to 429/503.
func mapIngestErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ingest.ErrLastElement):
		return fmt.Errorf("%w: %w", ErrEmptyDataset, err)
	case errors.Is(err, ingest.ErrValueNotFound):
		return fmt.Errorf("%w: %w", ErrValueNotFound, err)
	}
	return err
}

// CreateMutable builds and hosts a mutable dataset. Nil weights mean
// uniform; inputs are copied. The initial build degrades to naive on
// failure exactly like Create; the ingestion machinery starts
// immediately and is stopped by Service.Close.
func (s *Service) CreateMutable(ctx context.Context, name string, kind core.Kind, values, weights []float64, mo MutableOptions) (err error) {
	defer s.track(&err)()
	if len(values) == 0 {
		return ErrEmptyDataset
	}
	if weights != nil && len(weights) != len(values) {
		return fmt.Errorf("%w: %d values vs %d weights", core.ErrBadValue, len(values), len(weights))
	}
	s.mu.RLock()
	_, taken := s.datasets[name]
	s.mu.RUnlock()
	if taken {
		return fmt.Errorf("%w: %q", ErrDatasetExists, name)
	}
	vcopy := append([]float64(nil), values...)
	var wcopy []float64
	if weights == nil {
		wcopy = make([]float64, len(values))
		for i := range wcopy {
			wcopy[i] = 1
		}
	} else {
		wcopy = append([]float64(nil), weights...)
	}
	snap, err := s.build(ctx, name, kind, vcopy, wcopy, "build")
	if err != nil {
		return err
	}
	ds := &dataset{name: name, requested: kind, values: vcopy, weights: wcopy, snap: snap}
	if ds.pool = s.newPool(name); ds.pool != nil {
		ds.pool.Bind(snap.sampler)
	}
	ds.est = s.newDistinct(vcopy)
	cfg := ingest.Config{
		Seed:             mo.Seed,
		QueueDepth:       mo.QueueDepth,
		RebuildThreshold: mo.RebuildThreshold,
		MaxLag:           mo.MaxLag,
		RebuildInterval:  mo.RebuildInterval,
		Metrics:          s.opts.Metrics,
		Labels: append(append([]metrics.Label(nil), s.opts.MetricLabels...),
			metrics.L("dataset", name)),
		Logger: s.log,
		Build: func(bctx context.Context, vals, ws []float64) (*core.RangeSampler, error) {
			sn, berr := s.build(bctx, name, ds.requested, vals, ws, "rebuild")
			if berr != nil {
				return nil, berr
			}
			// Mirror the new base into the Health snapshot; reads keep
			// going through the table.
			ds.publish(sn)
			if ds.pool != nil {
				// Retire every pooled draw for the old base before the
				// table swaps the new one in: draws pooled against the
				// retired base can never be served once deltas it did
				// not see are folded into the replacement.
				ds.pool.Bind(sn.sampler)
			}
			// The materialized arrays fold every overlay-era insert and
			// delete into the new base, so the sketch rebuilds from them
			// and the stream sample starts over.
			ds.est.rebuild(vals)
			s.rebuilds.Add(1)
			return sn.sampler, nil
		},
	}
	tbl, err := ingest.New(snap.sampler, cfg)
	if err != nil {
		if ds.pool != nil {
			ds.pool.Close()
		}
		return err
	}
	ds.tbl = tbl
	qo := s.monitorOpts(name)
	qo.LiveWeight = func(lo, hi float64, wor bool) float64 {
		if wor {
			return float64(tbl.Count(lo, hi))
		}
		return tbl.RangeWeight(lo, hi)
	}
	ds.liveMon = metrics.NewUniformity(vcopy, wcopy, qo)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.datasets[name]; ok {
		tbl.Close()
		if ds.pool != nil {
			ds.pool.Close()
		}
		return fmt.Errorf("%w: %q", ErrDatasetExists, name)
	}
	s.datasets[name] = ds
	return nil
}

// mutableSampleInto is the WR read path for mutable datasets: the
// table's union sampler (frozen base + overlay, tombstones masked) with
// the dynamic-expectations monitor folded afterwards. While the table
// is pure (overlay empty, no tombstones) the draw is the base's own
// zero-alloc hot path — and, when pooling is enabled, may be served
// from pre-drawn inventory. The pool is consulted only behind the same
// lock-free purity gate as the fast path (live state IS the frozen
// base), and a partial hit completes from that same frozen base, so
// the response is linearized at the purity check exactly like an
// unpooled pure read. Rebuilds rebind the pool before publishing the
// new base, so draws pooled against a retired base are unreachable.
func (s *Service) mutableSampleInto(ctx context.Context, ds *dataset, r *core.Rand, lo, hi float64, k int, dst []float64) (out []float64, err error) {
	snap := ds.snapshot()
	end := metrics.TraceFrom(ctx).StartSpan("service.sample")
	start := time.Now()
	out = dst
	if ds.pool != nil && k > 0 {
		if base, pure := ds.tbl.PureBase(); pure {
			if err = ctx.Err(); err != nil {
				end()
				return dst, err
			}
			var took int
			out, took = ds.pool.TakeInto(base, lo, hi, k, out)
			if took == k {
				s.observeLatency(opSample, snap.active, time.Since(start).Seconds())
				end()
				ds.liveMon.Fold(lo, hi, out[len(dst):], false)
				return out, nil
			}
			if took > 0 {
				// Complete the response from the same frozen base the
				// pooled draws came from, not the union sampler: the
				// whole response then reflects one state of S.
				sc := core.GetScratch()
				err = s.guard(snap.active, "sample", func() error {
					var e error
					out, e = base.SampleContextInto(ctx, r, lo, hi, k-took, out, sc)
					return e
				})
				core.PutScratch(sc)
				s.observeLatency(opSample, snap.active, time.Since(start).Seconds())
				end()
				if err != nil {
					return dst, err
				}
				ds.liveMon.Fold(lo, hi, out[len(dst):], false)
				return out, nil
			}
		}
	}
	sc := core.GetScratch()
	defer core.PutScratch(sc)
	err = s.guard(snap.active, "sample", func() error {
		if e := ctx.Err(); e != nil {
			return e
		}
		var ok bool
		out, ok = ds.tbl.SampleInto(r, lo, hi, k, out, sc)
		if !ok {
			if verr := core.ValidateRange(lo, hi); verr != nil {
				return verr
			}
			return core.ErrEmptyRange
		}
		return nil
	})
	s.observeLatency(opSample, snap.active, time.Since(start).Seconds())
	end()
	if err != nil {
		return dst, err
	}
	ds.liveMon.Fold(lo, hi, out[len(dst):], false)
	return out, nil
}

// mutableWoRInto is the WoR read path for mutable datasets.
func (s *Service) mutableWoRInto(ctx context.Context, ds *dataset, r *core.Rand, lo, hi float64, k int, dst []float64) (out []float64, err error) {
	snap := ds.snapshot()
	end := metrics.TraceFrom(ctx).StartSpan("service.wor")
	start := time.Now()
	sc := core.GetScratch()
	defer core.PutScratch(sc)
	out = dst
	err = s.guard(snap.active, "wor", func() error {
		if e := ctx.Err(); e != nil {
			return e
		}
		var e error
		out, e = ds.tbl.SampleWoRInto(r, lo, hi, k, out, sc)
		return e
	})
	s.observeLatency(opWoR, snap.active, time.Since(start).Seconds())
	end()
	if err != nil {
		return dst, err
	}
	ds.liveMon.Fold(lo, hi, out[len(dst):], true)
	return out, nil
}

// BulkLoad appends a batch of elements to a mutable dataset in one
// delta-log entry and kicks an immediate rebuild.
func (s *Service) BulkLoad(ctx context.Context, name string, values, weights []float64) (err error) {
	defer s.track(&err)()
	ds, err := s.lookup(name)
	if err != nil {
		return err
	}
	if ds.tbl == nil {
		return fmt.Errorf("%w: %q", ErrNotMutable, name)
	}
	if err = mapIngestErr(ds.tbl.BulkLoad(ctx, values, weights)); err != nil {
		return err
	}
	for _, v := range values {
		ds.est.noteInsert(v)
	}
	return nil
}

// Flush drains a mutable dataset's delta log through synchronous
// rebuilds, returning once the table is pure again.
func (s *Service) Flush(ctx context.Context, name string) (err error) {
	defer s.track(&err)()
	ds, err := s.lookup(name)
	if err != nil {
		return err
	}
	if ds.tbl == nil {
		return fmt.Errorf("%w: %q", ErrNotMutable, name)
	}
	return ds.tbl.Flush(ctx)
}

// IngestStats returns the ingestion diagnostics of a mutable dataset.
func (s *Service) IngestStats(name string) (ingest.Stats, error) {
	ds, err := s.lookup(name)
	if err != nil {
		return ingest.Stats{}, err
	}
	if ds.tbl == nil {
		return ingest.Stats{}, fmt.Errorf("%w: %q", ErrNotMutable, name)
	}
	return ds.tbl.Stats(), nil
}

// LiveData returns a copy of the dataset's current elements — the
// instantaneous materialised state for mutable datasets, the master
// arrays for static ones. The soak oracle diffs against it.
func (s *Service) LiveData(name string) (values, weights []float64, err error) {
	ds, err := s.lookup(name)
	if err != nil {
		return nil, nil, err
	}
	if ds.tbl != nil {
		v, w := ds.tbl.LiveData()
		return v, w, nil
	}
	ds.updMu.Lock()
	defer ds.updMu.Unlock()
	return append([]float64(nil), ds.values...), append([]float64(nil), ds.weights...), nil
}

// Mutable reports whether the named dataset accepts the ingest write
// path (CreateMutable). Unknown names report false.
func (s *Service) Mutable(name string) bool {
	ds, err := s.lookup(name)
	return err == nil && ds.tbl != nil
}

// Close stops the ingestion machinery of every mutable dataset: queued
// writes are drained with ingest.ErrClosed, background rebuilders exit,
// reads keep answering from the last published state. Static datasets
// are unaffected. Safe to call more than once.
func (s *Service) Close() {
	s.mu.RLock()
	tables := make([]*ingest.Table, 0, len(s.datasets))
	pools := make([]*samplepool.Pool, 0, len(s.datasets))
	for _, ds := range s.datasets {
		if ds.tbl != nil {
			tables = append(tables, ds.tbl)
		}
		if ds.pool != nil {
			pools = append(pools, ds.pool)
		}
	}
	s.mu.RUnlock()
	for _, t := range tables {
		t.Close()
	}
	for _, p := range pools {
		p.Close()
	}
}
