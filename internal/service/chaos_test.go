package service

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/em"
	"repro/internal/stats"
)

// TestChaosServiceUnderFaults is the acceptance chaos test: 32
// concurrent clients push 10k+ mixed query/update requests through the
// service while the EM mirror injects transient faults at p = 0.05.
// Requirements proved here:
//
//   - zero process panics (the test binary survives; every contained
//     panic would surface as a typed *InternalError instead);
//   - every error crossing the boundary is in the typed vocabulary;
//   - the surviving samples still pass the chi-squared uniformity check
//     used by the distribution tests elsewhere in the repo;
//   - when rebuild faults are forced (p = 1), the dataset degrades to
//     naive with a recorded DowngradeEvent — and keeps answering.
//
// Run it with -race (the `make chaos` target does).
func TestChaosServiceUnderFaults(t *testing.T) {
	dev, err := em.NewDevice(64, 4096)
	if err != nil {
		t.Fatal(err)
	}
	dev.SetFaultPolicy(&em.FaultPolicy{ReadFailProb: 0.05, WriteFailProb: 0.05, Seed: 1})
	svc := New(Options{
		Mirror:      dev,
		Retry:       em.RetryPolicy{MaxAttempts: 8, BaseDelay: 20 * time.Microsecond, MaxDelay: 200 * time.Microsecond},
		BuildBudget: 10 * time.Second,
	})
	bg := context.Background()

	const stableN = 256
	if err := svc.Create(bg, "stable", core.KindChunked, seq(stableN), nil); err != nil {
		t.Fatal(err)
	}
	if err := svc.Create(bg, "hot", core.KindChunked, seq(512), nil); err != nil {
		t.Fatal(err)
	}

	const (
		clients   = 32
		perClient = 313 // 32 × 313 = 10016 ≥ 10k requests
	)
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		bins      = make([]int, stableN) // samples surviving from "stable"
		completed int
		badErrs   []error
	)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := core.NewRand(uint64(1000 + g))
			local := make([]int, stableN)
			var inserted []float64
			var localBad []error
			done := 0
			for i := 0; i < perClient; i++ {
				ctx, cancel := context.WithTimeout(bg, 5*time.Second)
				var err error
				switch i % 10 {
				case 0, 1, 2, 3, 4, 5:
					var out []float64
					out, err = svc.Sample(ctx, r, "stable", 0, stableN-1, 4)
					for _, v := range out {
						local[int(v)]++
					}
				case 6:
					_, err = svc.Count(ctx, "stable", float64(r.Intn(stableN)), float64(stableN))
				case 7:
					_, err = svc.SampleWoR(ctx, r, "stable", 0, stableN-1, 8)
				case 8:
					v := float64(1_000_000 + g*10_000 + i)
					if err = svc.Insert(ctx, "hot", v, 1+r.Float64()); err == nil {
						inserted = append(inserted, v)
					}
				case 9:
					if len(inserted) > 0 {
						v := inserted[len(inserted)-1]
						if err = svc.Delete(ctx, "hot", v); err == nil {
							inserted = inserted[:len(inserted)-1]
						}
					} else {
						// Deliberately missing: must fail *typed*.
						err = svc.Delete(ctx, "hot", -math.Pi)
					}
				}
				cancel()
				if err != nil && !IsTyped(err) {
					localBad = append(localBad, err)
				}
				done++
			}
			mu.Lock()
			for b, c := range local {
				bins[b] += c
			}
			completed += done
			badErrs = append(badErrs, localBad...)
			mu.Unlock()
		}(g)
	}
	wg.Wait()

	if completed != clients*perClient {
		t.Fatalf("completed %d of %d requests", completed, clients*perClient)
	}
	for _, e := range badErrs {
		t.Errorf("untyped error crossed the service boundary: %v", e)
	}
	if dev.FaultsInjected() == 0 {
		t.Fatal("no EM faults injected — the chaos exercised nothing")
	}

	// Distribution check on the surviving samples: uniform weights over
	// stableN values, so the bin counts must pass the same chi-squared
	// uniformity test the repo's distribution tests use.
	total := 0
	for _, c := range bins {
		total += c
	}
	if total < 10000 {
		t.Fatalf("only %d surviving samples", total)
	}
	chi2, err := stats.ChiSquareUniform(bins)
	if err != nil {
		t.Fatal(err)
	}
	if crit := stats.ChiSquareCritical(stableN-1, 1e-4); chi2 > crit {
		t.Errorf("surviving samples not uniform: chi2 = %.1f > crit %.1f over %d samples", chi2, crit, total)
	}

	h := svc.Health()
	if h.Requests < int64(clients*perClient) {
		t.Errorf("health lost requests: %+v", h)
	}
	t.Logf("health after chaos: %+v (EM faults %d)", h, dev.FaultsInjected())

	// Forced rebuild faults: every mirror I/O fails, so the next update
	// must degrade "hot" to naive, record the downgrade, and keep
	// serving.
	dev.SetFaultPolicy(&em.FaultPolicy{ReadFailProb: 1, WriteFailProb: 1, Seed: 2})
	before := len(svc.Downgrades())
	if err := svc.Insert(bg, "hot", 9e6, 1); err != nil {
		t.Fatalf("insert under forced faults should degrade, not fail: %v", err)
	}
	evs := svc.Downgrades()
	if len(evs) <= before {
		t.Fatal("forced rebuild fault recorded no DowngradeEvent")
	}
	last := evs[len(evs)-1]
	if last.Dataset != "hot" || last.From != core.KindChunked || last.Op != "rebuild" {
		t.Fatalf("unexpected downgrade event: %+v", last)
	}
	for _, d := range svc.Health().Datasets {
		if d.Name == "hot" && (!d.Degraded || d.Active != core.KindNaive) {
			t.Fatalf("hot not degraded to naive: %+v", d)
		}
	}
	out, err := svc.Sample(bg, core.NewRand(99), "hot", 0, 1e7, 16)
	if err != nil || len(out) != 16 {
		t.Fatalf("degraded hot dataset stopped answering: %v, %d", err, len(out))
	}
}
