package service

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
)

// TestCancellationPerKind proves every sampler kind propagates
// context.Canceled and context.DeadlineExceeded through the service
// promptly on large inputs: the query loops poll the context at least
// every core.PollEvery units of work, so even a million-sample request
// against a 200k-element set returns in poll-interval time, not
// query-completion time.
func TestCancellationPerKind(t *testing.T) {
	values := seq(200000)
	s := New(Options{})
	bg := context.Background()
	for _, k := range []core.Kind{core.KindChunked, core.KindAliasAug, core.KindTreeWalk, core.KindNaive} {
		if err := s.Create(bg, k.String(), k, values, nil); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range []core.Kind{core.KindChunked, core.KindAliasAug, core.KindTreeWalk, core.KindNaive} {
		t.Run(k.String(), func(t *testing.T) {
			r := core.NewRand(7)
			// Pre-canceled context: the first poll sees it.
			ctx, cancel := context.WithCancel(bg)
			cancel()
			start := time.Now()
			_, err := s.Sample(ctx, r, k.String(), 0, 200000, 1<<20)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("Sample: %v, want context.Canceled", err)
			}
			if el := time.Since(start); el > 2*time.Second {
				t.Fatalf("canceled Sample took %v", el)
			}
			// Expired deadline.
			dctx, dcancel := context.WithDeadline(bg, time.Now().Add(-time.Millisecond))
			defer dcancel()
			_, err = s.Sample(dctx, r, k.String(), 0, 200000, 1<<20)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("Sample: %v, want context.DeadlineExceeded", err)
			}
			_, err = s.SampleWoR(dctx, r, k.String(), 0, 200000, 1000)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("SampleWoR: %v, want context.DeadlineExceeded", err)
			}
			// Mid-flight cancellation: start a huge query, cancel while
			// it runs, and require the poll interval to notice.
			mctx, mcancel := context.WithCancel(bg)
			done := make(chan error, 1)
			go func() {
				_, err := s.Sample(mctx, core.NewRand(8), k.String(), 0, 200000, 1<<24)
				done <- err
			}()
			time.Sleep(5 * time.Millisecond)
			mcancel()
			select {
			case err := <-done:
				// Either the cancel landed mid-query or the query was
				// already complete (nil) — both are legal; what is not
				// legal is hanging.
				if err != nil && !errors.Is(err, context.Canceled) {
					t.Fatalf("mid-flight: %v", err)
				}
			case <-time.After(30 * time.Second):
				t.Fatal("query did not notice cancellation")
			}
		})
	}
}

// TestUpdateCancellation proves update paths honour ctx too.
func TestUpdateCancellation(t *testing.T) {
	s := New(Options{})
	bg := context.Background()
	if err := s.Create(bg, "d", core.KindChunked, seq(100), nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(bg)
	cancel()
	if err := s.Insert(ctx, "d", 1000, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("Insert: %v", err)
	}
	if err := s.Delete(ctx, "d", 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("Delete: %v", err)
	}
	if n, _ := s.Count(bg, "d", 0, 1000); n != 100 {
		t.Fatalf("canceled updates must not apply: n=%d", n)
	}
}
