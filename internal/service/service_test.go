package service

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/em"
)

func seq(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = float64(i)
	}
	return v
}

func TestCreateSampleCountRoundTrip(t *testing.T) {
	s := New(Options{})
	ctx := context.Background()
	if err := s.Create(ctx, "d", core.KindChunked, seq(1000), nil); err != nil {
		t.Fatal(err)
	}
	r := core.NewRand(1)
	out, err := s.Sample(ctx, r, "d", 100, 199, 50)
	if err != nil || len(out) != 50 {
		t.Fatalf("Sample: %v, %d samples", err, len(out))
	}
	for _, v := range out {
		if v < 100 || v > 199 {
			t.Fatalf("sample %v outside range", v)
		}
	}
	n, err := s.Count(ctx, "d", 100, 199)
	if err != nil || n != 100 {
		t.Fatalf("Count = %d, %v", n, err)
	}
	wor, err := s.SampleWoR(ctx, r, "d", 0, 9, 10)
	if err != nil || len(wor) != 10 {
		t.Fatalf("SampleWoR: %v, %d", err, len(wor))
	}
}

func TestTypedErrorsAtBoundary(t *testing.T) {
	s := New(Options{})
	ctx := context.Background()
	r := core.NewRand(1)
	if _, err := s.Sample(ctx, r, "nope", 0, 1, 1); !errors.Is(err, ErrUnknownDataset) || !IsTyped(err) {
		t.Errorf("unknown dataset: %v", err)
	}
	if err := s.Create(ctx, "d", core.KindChunked, nil, nil); !errors.Is(err, ErrEmptyDataset) {
		t.Errorf("empty create: %v", err)
	}
	if err := s.Create(ctx, "d", core.KindChunked, []float64{math.NaN()}, nil); !errors.Is(err, core.ErrBadValue) {
		t.Errorf("NaN create: %v", err)
	}
	if err := s.Create(ctx, "d", core.KindChunked, seq(10), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Create(ctx, "d", core.KindNaive, seq(10), nil); !errors.Is(err, ErrDatasetExists) {
		t.Errorf("duplicate create: %v", err)
	}
	if err := s.Insert(ctx, "d", math.Inf(1), 1); !errors.Is(err, core.ErrBadValue) {
		t.Errorf("inf insert: %v", err)
	}
	if err := s.Insert(ctx, "d", 1, 0); !errors.Is(err, core.ErrBadWeight) {
		t.Errorf("zero-weight insert: %v", err)
	}
	if err := s.Delete(ctx, "d", 12345); !errors.Is(err, ErrValueNotFound) {
		t.Errorf("missing delete: %v", err)
	}
	if _, err := s.Sample(ctx, r, "d", 5, 2, 1); !errors.Is(err, core.ErrBadRange) {
		t.Errorf("inverted range: %v", err)
	}
	if _, err := s.Sample(ctx, r, "d", 100, 200, 1); !errors.Is(err, core.ErrEmptyRange) {
		t.Errorf("empty range: %v", err)
	}
	h := s.Health()
	if h.Requests == 0 || h.Failures == 0 {
		t.Errorf("health not tracking: %+v", h)
	}
}

func TestUpdatesSwapSnapshots(t *testing.T) {
	s := New(Options{})
	ctx := context.Background()
	if err := s.Create(ctx, "d", core.KindChunked, []float64{1, 2, 3}, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(ctx, "d", 4, 1); err != nil {
		t.Fatal(err)
	}
	n, err := s.Count(ctx, "d", 0, 10)
	if err != nil || n != 4 {
		t.Fatalf("after insert: n=%d err=%v", n, err)
	}
	if err := s.Delete(ctx, "d", 2); err != nil {
		t.Fatal(err)
	}
	n, _ = s.Count(ctx, "d", 0, 10)
	if n != 3 {
		t.Fatalf("after delete: n=%d", n)
	}
	if got := s.Health().Rebuilds; got != 2 {
		t.Fatalf("Rebuilds = %d, want 2", got)
	}
	// The dataset never goes empty.
	for _, v := range []float64{1, 3, 4} {
		err = s.Delete(ctx, "d", v)
	}
	if !errors.Is(err, ErrEmptyDataset) {
		t.Fatalf("emptying delete: %v", err)
	}
}

func TestPanicContainment(t *testing.T) {
	s := New(Options{})
	// A sampler with a deliberately poisoned inner state would require
	// reaching into core; instead force a panic through the guard
	// directly and through a real overflow: Sample with k so large the
	// slice allocation panics is not portable, so use guard().
	err := s.guard(core.KindChunked, "op", func() error { panic("invariant violated") })
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("guard returned %v", err)
	}
	if ie.Kind != core.KindChunked || ie.Op != "op" || ie.Stack == "" {
		t.Fatalf("incomplete InternalError: %+v", ie)
	}
	if !IsTyped(err) {
		t.Error("InternalError not in typed vocabulary")
	}
	if s.Health().PanicsContained != 1 {
		t.Errorf("PanicsContained = %d", s.Health().PanicsContained)
	}
}

func TestMirrorFaultsDegradeToNaive(t *testing.T) {
	dev, err := em.NewDevice(32, 256)
	if err != nil {
		t.Fatal(err)
	}
	// Every write fails: mirror persistence can never succeed, so every
	// build degrades — but the service still serves correct answers.
	dev.SetFaultPolicy(&em.FaultPolicy{WriteFailProb: 1, Seed: 1})
	s := New(Options{Mirror: dev, Retry: em.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond}})
	ctx := context.Background()
	if err := s.Create(ctx, "d", core.KindChunked, seq(100), nil); err != nil {
		t.Fatalf("create under forced faults should degrade, not fail: %v", err)
	}
	h := s.Health()
	if len(h.Datasets) != 1 || !h.Datasets[0].Degraded || h.Datasets[0].Active != core.KindNaive {
		t.Fatalf("dataset not degraded: %+v", h.Datasets)
	}
	evs := s.Downgrades()
	if len(evs) != 1 || evs[0].From != core.KindChunked || evs[0].Op != "build" {
		t.Fatalf("downgrade events: %+v", evs)
	}
	out, err := s.Sample(ctx, core.NewRand(1), "d", 10, 20, 5)
	if err != nil || len(out) != 5 {
		t.Fatalf("degraded sample: %v, %d", err, len(out))
	}
	// Heal the device: the next update restores the requested kind.
	dev.SetFaultPolicy(nil)
	if err := s.Insert(ctx, "d", 50.5, 1); err != nil {
		t.Fatal(err)
	}
	h = s.Health()
	if h.Datasets[0].Degraded || h.Datasets[0].Active != core.KindChunked {
		t.Fatalf("dataset did not heal: %+v", h.Datasets[0])
	}
}

func TestBuildBudgetDegrades(t *testing.T) {
	// A budget that has no chance against a 2M-element chunked build on
	// purpose; the dataset must come up degraded yet answering.
	s := New(Options{BuildBudget: time.Nanosecond})
	ctx := context.Background()
	if err := s.Create(ctx, "big", core.KindChunked, seq(1<<21), nil); err != nil {
		t.Fatalf("budgeted create: %v", err)
	}
	h := s.Health()
	if !h.Datasets[0].Degraded {
		t.Fatalf("expected degradation under 1ns budget: %+v", h.Datasets[0])
	}
	if h.Downgrades != 1 {
		t.Fatalf("Downgrades = %d", h.Downgrades)
	}
	out, err := s.Sample(ctx, core.NewRand(1), "big", 0, 1000, 3)
	if err != nil || len(out) != 3 {
		t.Fatalf("sample after budget degrade: %v", err)
	}
}

func TestCallerCancellationIsNotDowngraded(t *testing.T) {
	s := New(Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.Create(ctx, "d", core.KindChunked, seq(1<<20), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled create: %v", err)
	}
	if h := s.Health(); h.Downgrades != 0 || len(h.Datasets) != 0 {
		t.Fatalf("caller cancellation must not create/degrade: %+v", h)
	}
}

func TestRangeWeight(t *testing.T) {
	s := New(Options{})
	ctx := context.Background()
	values := []float64{1, 2, 3, 4}
	weights := []float64{1, 2, 3, 4}
	if err := s.Create(ctx, "d", core.KindChunked, values, weights); err != nil {
		t.Fatal(err)
	}
	w, err := s.RangeWeight(ctx, "d", 2, 3)
	if err != nil || math.Abs(w-5) > 1e-9 {
		t.Fatalf("RangeWeight(2, 3) = %v, %v; want 5", w, err)
	}
	if _, err := s.RangeWeight(ctx, "missing", 0, 1); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("unknown dataset: %v", err)
	}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := s.RangeWeight(canceled, "d", 0, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled: %v", err)
	}
}

// A caller that is already gone must not pay the mirror retry backoff:
// Create with a cancelled context and a permanently faulted mirror
// returns the context error promptly instead of degrading after
// sleeping out the full retry schedule.
func TestMirrorRetryRespectsCancelledContext(t *testing.T) {
	dev, err := em.NewDevice(32, 256)
	if err != nil {
		t.Fatal(err)
	}
	dev.SetFaultPolicy(&em.FaultPolicy{WriteFailProb: 1, Seed: 1})
	s := New(Options{Mirror: dev, Retry: em.RetryPolicy{MaxAttempts: 10, BaseDelay: time.Second}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	err = s.Create(ctx, "d", core.KindChunked, seq(100), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Fatalf("cancelled create took %v; retry backoff ignored the context", d)
	}
	if h := s.Health(); h.Downgrades != 0 || len(h.Datasets) != 0 {
		t.Fatalf("cancelled create must not create or downgrade: %+v", h)
	}
}
