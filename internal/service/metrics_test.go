package service

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/em"
	"repro/internal/metrics"
)

func newBufLogger(w io.Writer) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, nil))
}

// TestDowngradeRingBounded is the regression test for the unbounded
// downgrade-event slice: 10k recorded downgrades must hold the retained
// set at the configured cap while keeping the newest events, and the
// total downgrade counter must keep counting past the cap.
func TestDowngradeRingBounded(t *testing.T) {
	const cap_, total = 16, 10000
	s := New(Options{DowngradeEventCap: cap_})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < total/8; i++ {
				s.downgrades.Inc()
				s.recordDowngrade(DowngradeEvent{Dataset: fmt.Sprintf("%d-%d", g, i)})
			}
		}(g)
	}
	wg.Wait()
	evs := s.Downgrades()
	if len(evs) != cap_ {
		t.Fatalf("ring holds %d events after %d downgrades, want cap %d", len(evs), total, cap_)
	}
	if got := s.Health().Downgrades; got != total {
		t.Fatalf("downgrade counter %d, want %d (cap must not truncate accounting)", got, total)
	}
	// Sequentially recorded tails are retained newest-last.
	s2 := New(Options{DowngradeEventCap: 4})
	for i := 0; i < 10; i++ {
		s2.recordDowngrade(DowngradeEvent{Reason: fmt.Sprintf("ev%d", i)})
	}
	got := s2.Downgrades()
	want := []string{"ev6", "ev7", "ev8", "ev9"}
	for i, ev := range got {
		if ev.Reason != want[i] {
			t.Fatalf("ring order: got %v at %d, want %v", ev.Reason, i, want[i])
		}
	}
}

// TestDowngradeRingBoundedEndToEnd drives real downgrades through a
// permanently faulting mirror: every rebuild degrades, and the retained
// events stay at the cap.
func TestDowngradeRingBoundedEndToEnd(t *testing.T) {
	dev, err := em.NewDevice(64, 4096)
	if err != nil {
		t.Fatal(err)
	}
	dev.SetFaultPolicy(&em.FaultPolicy{WriteFailProb: 1, Seed: 7})
	s := New(Options{
		Mirror:            dev,
		Retry:             em.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond},
		DowngradeEventCap: 8,
	})
	bg := context.Background()
	if err := s.Create(bg, "d", core.KindChunked, seq(64), nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := s.Insert(bg, "d", float64(100+i), 1); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if evs := s.Downgrades(); len(evs) != 8 {
		t.Fatalf("retained %d events, want 8", len(evs))
	}
	if h := s.Health(); h.Downgrades != 41 { // 1 create + 40 rebuilds
		t.Fatalf("downgrades counted %d, want 41", h.Downgrades)
	}
}

// TestServiceMetricsExported checks the service's instruments land in
// the registry: request/latency series, downgrade and EM mirror
// counters, and the per-dataset quality gauge.
func TestServiceMetricsExported(t *testing.T) {
	dev, err := em.NewDevice(64, 4096)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	s := New(Options{Metrics: reg, Mirror: dev, MetricLabels: []metrics.Label{metrics.L("shard", "0")}})
	bg := context.Background()
	if err := s.Create(bg, "ds", core.KindChunked, seq(512), nil); err != nil {
		t.Fatal(err)
	}
	r := core.NewRand(3)
	for i := 0; i < 300; i++ {
		if _, err := s.Sample(bg, r, "ds", 0, 511, 8); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	exp, err := metrics.ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, buf.String())
	}
	if v, ok := exp.Get("iqs_service_requests_total", `shard="0"`); !ok || v != 301 { // create + 300 samples
		t.Fatalf("iqs_service_requests_total = %v, %v", v, ok)
	}
	if v := exp.SumAcross("iqs_service_sample_seconds_count"); v != 300 {
		t.Fatalf("sample latency histogram count %v, want 300", v)
	}
	if _, ok := exp.Get("iqs_sample_quality_ratio", `dataset="ds"`); !ok {
		t.Fatalf("quality gauge missing:\n%s", buf.String())
	}
	if q, ok := exp.Get("iqs_sample_quality_ratio", `dataset="ds"`); !ok || q > 1 {
		t.Fatalf("quality ratio %v on a correct sampler, want <= 1", q)
	}
	if v, ok := exp.Get("iqs_em_writes_total", `shard="0"`); !ok || v <= 0 {
		t.Fatalf("iqs_em_writes_total = %v, %v", v, ok)
	}
}

// TestDowngradeWarnCarriesRequestID ties the three tracing pieces
// together at the service layer: a downgrade triggered by a request
// whose context carries a trace logs the request id.
func TestDowngradeWarnCarriesRequestID(t *testing.T) {
	dev, err := em.NewDevice(64, 4096)
	if err != nil {
		t.Fatal(err)
	}
	dev.SetFaultPolicy(&em.FaultPolicy{WriteFailProb: 1, Seed: 9})
	var buf bytes.Buffer
	s := New(Options{
		Mirror: dev,
		Retry:  em.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond},
		Logger: newBufLogger(&buf),
	})
	tr := metrics.NewTrace("feedfacefeedface", true)
	defer tr.Release()
	ctx := metrics.ContextWithTrace(context.Background(), tr)
	if err := s.Create(ctx, "d", core.KindChunked, seq(32), nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "feedfacefeedface") {
		t.Fatalf("downgrade warning missing request id: %s", buf.String())
	}
}
