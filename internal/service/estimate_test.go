package service

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/estimate"
)

func TestEstimateCountSumAvgStatic(t *testing.T) {
	s := New(Options{})
	ctx := context.Background()
	if err := s.Create(ctx, "d", core.KindChunked, seq(10000), nil); err != nil {
		t.Fatal(err)
	}
	r := core.NewRand(7)

	// COUNT over [0, 2499]: exact 2500 of 10000. The estimate must land
	// near it, the interval must bracket it, and the q-error must be
	// scored against the exact answer.
	res, err := s.Estimate(ctx, r, "d", EstimateRequest{Op: estimate.OpCount, Lo: 0, Hi: 2499, K: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Op != estimate.OpCount || res.K != 2000 {
		t.Fatalf("metadata: %+v", res)
	}
	if rel := math.Abs(res.Estimate-2500) / 2500; rel > 0.15 {
		t.Fatalf("count estimate %v off by %.3f relative", res.Estimate, rel)
	}
	if res.CILo > 2500 || 2500 > res.CIHi {
		t.Fatalf("interval [%v, %v] misses 2500", res.CILo, res.CIHi)
	}
	if res.QError < 1 || math.IsNaN(res.QError) {
		t.Fatalf("q-error %v not scored", res.QError)
	}
	if res.QBound <= 1 {
		t.Fatalf("q-bound %v not computed", res.QBound)
	}

	// SUM over [100, 199]: exact 100·(100+199)/2 = 14950 under uniform
	// weights (W = count, mean of values ≈ 149.5).
	res, err = s.Estimate(ctx, r, "d", EstimateRequest{Op: estimate.OpSum, Lo: 100, Hi: 199, K: 500})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(res.Estimate-14950) / 14950; rel > 0.10 {
		t.Fatalf("sum estimate %v off by %.3f relative", res.Estimate, rel)
	}

	// AVG over the same range ≈ 149.5.
	res, err = s.Estimate(ctx, r, "d", EstimateRequest{Op: estimate.OpAvg, Lo: 100, Hi: 199})
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate < 120 || res.Estimate > 180 {
		t.Fatalf("avg estimate %v implausible for [100,199]", res.Estimate)
	}

	// Empty range: SUM is exactly 0, AVG is a typed empty-range error.
	res, err = s.Estimate(ctx, r, "d", EstimateRequest{Op: estimate.OpSum, Lo: 20000, Hi: 30000})
	if err != nil || !res.Exact || res.Estimate != 0 {
		t.Fatalf("empty-range sum: %+v, %v", res, err)
	}
	if _, err = s.Estimate(ctx, r, "d", EstimateRequest{Op: estimate.OpAvg, Lo: 20000, Hi: 30000}); !errors.Is(err, core.ErrEmptyRange) {
		t.Fatalf("empty-range avg: %v", err)
	}

	// Boundary validation and unknown datasets keep the typed contract.
	if _, err = s.Estimate(ctx, r, "d", EstimateRequest{Op: estimate.OpCount, Lo: 5, Hi: 1}); !errors.Is(err, core.ErrBadRange) {
		t.Fatalf("inverted range: %v", err)
	}
	if _, err = s.Estimate(ctx, r, "nope", EstimateRequest{Op: estimate.OpCount}); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("unknown dataset: %v", err)
	}
}

func TestEstimateDistinctStaticExactAndSketched(t *testing.T) {
	s := New(Options{})
	ctx := context.Background()
	r := core.NewRand(9)

	// Fewer distinct values than the sketch capacity: exact.
	small := make([]float64, 300)
	for i := range small {
		small[i] = float64(i % 40) // 40 distinct values
	}
	if err := s.Create(ctx, "small", core.KindChunked, small, nil); err != nil {
		t.Fatal(err)
	}
	res, err := s.Estimate(ctx, r, "small", EstimateRequest{Op: estimate.OpDistinct})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || res.Estimate != 40 {
		t.Fatalf("small distinct: %+v, want exact 40", res)
	}

	// Past capacity (default K = 1024): estimated within the sketch's
	// relative error, interval bracketing the truth.
	if err := s.Create(ctx, "big", core.KindChunked, seq(50000), nil); err != nil {
		t.Fatal(err)
	}
	res, err = s.Estimate(ctx, r, "big", EstimateRequest{Op: estimate.OpDistinct, Conf: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Fatal("sketched distinct reported exact")
	}
	if rel := math.Abs(res.Estimate-50000) / 50000; rel > 0.20 {
		t.Fatalf("distinct estimate %v off by %.3f relative", res.Estimate, rel)
	}
	if res.CILo > 50000 || 50000 > res.CIHi {
		t.Fatalf("99%% interval [%v, %v] misses 50000", res.CILo, res.CIHi)
	}

	// Static rebuilds refresh the sketch: deleting then inserting keeps
	// the state aligned with the published base.
	if err := s.Insert(ctx, "small", 1000, 1); err != nil {
		t.Fatal(err)
	}
	res, err = s.Estimate(ctx, r, "small", EstimateRequest{Op: estimate.OpDistinct})
	if err != nil || !res.Exact || res.Estimate != 41 {
		t.Fatalf("post-insert distinct: %+v, %v, want exact 41", res, err)
	}
}

func TestEstimateDistinctMutableStream(t *testing.T) {
	s := New(Options{})
	ctx := context.Background()
	r := core.NewRand(11)
	vals := make([]float64, 64)
	for i := range vals {
		vals[i] = float64(i)
	}
	// A huge rebuild threshold keeps inserts in the overlay so the
	// stream sample — not a rebuild — must carry them.
	if err := s.CreateMutable(ctx, "m", core.KindChunked, vals, nil, MutableOptions{RebuildThreshold: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	for i := 64; i < 128; i++ {
		if err := s.Insert(ctx, "m", float64(i), 1); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.Estimate(ctx, r, "m", EstimateRequest{Op: estimate.OpDistinct})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || res.Estimate != 128 {
		t.Fatalf("base+overlay distinct: %+v, want exact 128 (64 base + 64 streamed)", res)
	}

	// Flush folds the overlay into a new base and resets the stream; the
	// answer must not change.
	if err := s.Flush(ctx, "m"); err != nil {
		t.Fatal(err)
	}
	res, err = s.Estimate(ctx, r, "m", EstimateRequest{Op: estimate.OpDistinct})
	if err != nil || res.Estimate != 128 {
		t.Fatalf("post-flush distinct: %+v, %v, want 128", res, err)
	}

	// BulkLoad feeds the stream too.
	if err := s.BulkLoad(ctx, "m", []float64{500, 501, 502}, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(ctx, "m"); err != nil {
		t.Fatal(err)
	}
	res, err = s.Estimate(ctx, r, "m", EstimateRequest{Op: estimate.OpDistinct})
	if err != nil || res.Estimate != 131 {
		t.Fatalf("post-bulkload distinct: %+v, %v, want 131", res, err)
	}

	// COUNT on the mutable path answers from the table (base+overlay).
	cres, err := s.Estimate(ctx, r, "m", EstimateRequest{Op: estimate.OpCount, Lo: 0, Hi: 1000, K: 400})
	if err != nil {
		t.Fatal(err)
	}
	if cres.Estimate != 131 { // full-range: every draw matches
		t.Fatalf("mutable count estimate %v, want exactly 131", cres.Estimate)
	}
}

func TestDistinctSketchAccessorMerges(t *testing.T) {
	// Two services sharing default estimate options act like two shards:
	// their base sketches must merge and the union rule must count the
	// combined value set.
	a, b := New(Options{}), New(Options{})
	ctx := context.Background()
	va, vb := make([]float64, 0, 3000), make([]float64, 0, 3000)
	for i := 0; i < 3000; i++ {
		va = append(va, float64(i))      // 0..2999
		vb = append(vb, float64(i+1500)) // 1500..4499 — union 4500 distinct
	}
	if err := a.Create(ctx, "d", core.KindChunked, va, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Create(ctx, "d", core.KindChunked, vb, nil); err != nil {
		t.Fatal(err)
	}
	ska, sva, err := a.DistinctSketch("d")
	if err != nil {
		t.Fatal(err)
	}
	skb, svb, err := b.DistinctSketch("d")
	if err != nil {
		t.Fatal(err)
	}
	if err := ska.Merge(skb); err != nil {
		t.Fatalf("shard sketches must merge: %v", err)
	}
	res := estimate.UnionDistinct(0.99, estimate.KMVView(ska), sva, svb)
	if rel := math.Abs(res.Estimate-4500) / 4500; rel > 0.15 {
		t.Fatalf("merged distinct %v off by %.3f relative", res.Estimate, rel)
	}
	if _, _, err := a.DistinctSketch("nope"); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("unknown dataset: %v", err)
	}
}
