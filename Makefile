# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test race chaos fuzz bench experiments examples cover serve loadtest

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race -shuffle=on ./...

# Fault-injection chaos test for the hardened service layer: concurrent
# clients, EM faults on every mirror I/O, race detector on.
chaos:
	go test -race -run 'Chaos|Cancel' -count=1 -v ./internal/service

fuzz:
	go test -fuzz FuzzChunkedQuery -fuzztime 10s ./internal/rangesample

bench:
	go test -bench=. -benchmem ./...

experiments:
	go run ./cmd/iqsbench -all

examples:
	for e in quickstart estimation fairnn diversity external approximate stabbing; do \
		echo "=== $$e ==="; go run ./examples/$$e; echo; done

cover:
	go test -cover ./internal/...

# Run the sharded HTTP query server until Ctrl-C (SIGINT drains cleanly).
serve:
	go run ./cmd/iqsserve -addr 127.0.0.1:8080 -shards 4

# Self-contained load test: in-process server + 32 clients for 10s, with
# a small admission window so backpressure (429s) is visible.
loadtest:
	go run ./cmd/iqsserve -load -addr 127.0.0.1:0 -duration 10s -clients 32 -inflight 8
