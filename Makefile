# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test race chaos fuzz fuzz-smoke bench bench-json pprof experiments examples cover serve loadtest metrics-smoke pool-smoke estimate-smoke cluster-smoke churn

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race -shuffle=on ./...

# Fault-injection chaos test for the hardened service layer: concurrent
# clients, EM faults on every mirror I/O, race detector on.
chaos:
	go test -race -run 'Chaos|Cancel' -count=1 -v ./internal/service

fuzz:
	go test -fuzz FuzzChunkedQuery -fuzztime 10s ./internal/rangesample

# Differential soak fuzz smoke: a bounded adaptive session that
# cross-checks every sampling structure against the naive oracle and
# drives the HTTP serving stack under EM faults, snapshot churn, and
# admission pressure. Exits non-zero on any discrepancy; minimised
# repro files land in fuzz-artifacts/ (replay with
# `go run ./cmd/iqsfuzz -replay fuzz-artifacts/<file>`).
fuzz-smoke:
	go run ./cmd/iqsfuzz -duration 30s -server -faults -seed 1 -artifacts fuzz-artifacts

bench:
	go test -bench=. -benchmem ./...

# Reproducible hot-path benchmark snapshot: runs the serving-stack and
# core sampling benchmarks with -benchmem and merges the results into
# BENCH_hotpath.json under the given label (override with LABEL=...).
LABEL ?= pr8-after
bench-json:
	go run ./cmd/benchjson -label $(LABEL) -out BENCH_hotpath.json

# Profile the serving stack under load: in-process server + clients with
# the pprof endpoint up. While it runs (or against any -pprof server):
#   go tool pprof http://127.0.0.1:6060/debug/pprof/heap
#   go tool pprof http://127.0.0.1:6060/debug/pprof/profile?seconds=10
pprof:
	go run ./cmd/iqsserve -load -addr 127.0.0.1:0 -duration 30s -clients 16 -pprof 127.0.0.1:6060

experiments:
	go run ./cmd/iqsbench -all

examples:
	for e in quickstart estimation fairnn diversity external approximate stabbing; do \
		echo "=== $$e ==="; go run ./examples/$$e; echo; done

cover:
	go test -cover ./internal/...

# Run the sharded HTTP query server until Ctrl-C (SIGINT drains cleanly).
serve:
	go run ./cmd/iqsserve -addr 127.0.0.1:8080 -shards 4

# Self-contained load test: in-process server + 32 clients for 10s, with
# a small admission window so backpressure (429s) is visible.
loadtest:
	go run ./cmd/iqsserve -load -addr 127.0.0.1:0 -duration 10s -clients 32 -inflight 8

# Observability smoke: boot iqsserve with 5% EM faults and trace
# sampling on, drive load, validate the /metrics exposition with
# cmd/metricscheck, and drain on SIGINT.
metrics-smoke:
	sh scripts/metrics_smoke.sh

# Sample-pool smoke: gate the binary wire codec at <= 10 allocs/op,
# boot iqsserve with pooling on, hammer one hot window (JSON + binary
# framing), and assert pool hits, a >= 0.5 hot-window hit rate,
# consume-once conservation, and both wire-format counters.
pool-smoke:
	sh scripts/pool_smoke.sh

# Approximate-analytics smoke: boot iqsserve, hammer /estimate across
# count/sum/avg/distinct with cmd/metricscheck -estimate, validate every
# response's q-error against its certified bound, and assert the
# iqs_estimate_* families export with zero bound violations.
estimate-smoke:
	sh scripts/estimate_smoke.sh

# Multi-node smoke: boot two data nodes and a router (replicas=2),
# drive load with cmd/metricscheck -cluster, SIGKILL the primary owner
# of shard 0, drive again asserting zero 5xx, and require positive
# failover counters before draining the survivors on SIGINT.
cluster-smoke:
	sh scripts/cluster_smoke.sh

# Churn smoke: the mutable-serving statistical gate. In-process server
# with the ingest write path on, 16 clients at a 30% write mix under EM
# faults for 10s; after the drain the per-shard chi-squared uniformity
# monitors (folding every served sample against the instantaneous live
# weights) must all report quality ratio <= 1, or the run exits 1.
churn:
	go run ./cmd/iqsserve -mutable -load -write-mix 0.3 -clients 16 \
		-duration 10s -n 16384 -fault 0.02 -assert-quality 1 -addr 127.0.0.1:0
