# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test race bench experiments examples cover

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

experiments:
	go run ./cmd/iqsbench -all

examples:
	for e in quickstart estimation fairnn diversity external approximate stabbing; do \
		echo "=== $$e ==="; go run ./examples/$$e; echo; done

cover:
	go test -cover ./internal/...
