// Estimation (§2 Benefit 1): use IQS to estimate query selectivities with
// ε–δ guarantees, and watch the guarantee *hold over many estimates*
// because samples are independent across queries — then watch the
// dependent baseline fail exactly the way the paper warns.
//
//	go run ./examples/estimation
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/permsample"
	"repro/internal/stats"
)

func main() {
	r := core.NewRand(7)
	const n = 200_000
	// Relation R(A, B): A uniform in [0,1), B correlated with A.
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = r.Float64()
		b[i] = a[i]*0.5 + r.Float64()*0.5
	}

	// Index A for IQS. To estimate, for a range predicate on A, the
	// fraction of tuples whose B value exceeds a threshold, we sample
	// tuples from R_{qA} and test their B values.
	idx := make(map[float64]float64, n) // A value -> B value
	for i := range a {
		idx[a[i]] = b[i]
	}
	s, err := core.NewRangeSampler(core.KindChunked, a, nil)
	if err != nil {
		log.Fatal(err)
	}

	const eps, delta = 0.05, 0.1
	sSize := stats.SampleSizeForEstimate(eps, delta)
	fmt.Printf("ε = %.2f, δ = %.2f → s = %d samples per estimate\n\n", eps, delta, sSize)

	qLo, qHi, bThresh := 0.30, 0.70, 0.55
	truth := trueFraction(a, b, qLo, qHi, bThresh)
	fmt.Printf("ground truth: P(B > %.2f | A ∈ [%.2f, %.2f]) = %.4f\n\n", bThresh, qLo, qHi, truth)

	// Run m estimates with IQS: the error rate concentrates near δ.
	const m = 500
	bad := 0
	for i := 0; i < m; i++ {
		est := estimateOnce(r, s, idx, qLo, qHi, bThresh, sSize)
		if math.Abs(est-truth) > eps {
			bad++
		}
	}
	fmt.Printf("IQS:       %d/%d estimates outside ±ε (rate %.3f, guarantee ≤ %.2f)\n",
		bad, m, float64(bad)/m, delta)

	// The dependent baseline freezes one sample per permutation: across
	// repeats it returns the same estimate, so one unlucky permutation
	// poisons every estimate.
	ps, err := permsample.New(a, 99)
	if err != nil {
		log.Fatal(err)
	}
	firstEst := estimateDependent(ps, idx, qLo, qHi, bThresh, sSize)
	depBad := 0
	for i := 0; i < m; i++ {
		est := estimateDependent(ps, idx, qLo, qHi, bThresh, sSize)
		if est != firstEst {
			log.Fatal("dependent baseline returned a different answer?!")
		}
		if math.Abs(est-truth) > eps {
			depBad++
		}
	}
	fmt.Printf("dependent: %d/%d estimates outside ±ε — all-or-nothing (frozen sample)\n", depBad, m)
}

func trueFraction(a, b []float64, lo, hi, thresh float64) float64 {
	hit, tot := 0, 0
	for i := range a {
		if a[i] >= lo && a[i] <= hi {
			tot++
			if b[i] > thresh {
				hit++
			}
		}
	}
	return float64(hit) / float64(tot)
}

func estimateOnce(r *core.Rand, s *core.RangeSampler, idx map[float64]float64, lo, hi, thresh float64, k int) float64 {
	samples, ok := s.Sample(r, lo, hi, k)
	if !ok {
		return 0
	}
	hit := 0
	for _, av := range samples {
		if idx[av] > thresh {
			hit++
		}
	}
	return float64(hit) / float64(len(samples))
}

func estimateDependent(ps *permsample.Structure, idx map[float64]float64, lo, hi, thresh float64, k int) float64 {
	out, ok := ps.Query(lo, hi, k, nil)
	if !ok {
		return 0
	}
	hit := 0
	for _, pos := range out {
		if idx[ps.Value(pos)] > thresh {
			hit++
		}
	}
	return float64(hit) / float64(len(out))
}
