// Diversity (§2 Benefit 3): a product-search page that shows s = 8 items
// out of hundreds matching the query. With IQS, repeat visits surface
// fresh items and the union of what users ever see grows to the whole
// result; with the conventional permutation structure the same 8 items
// are pinned forever.
//
//	go run ./examples/diversity
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/permsample"
)

func main() {
	r := core.NewRand(3)
	// A catalogue of 100,000 products keyed by price; the query is a
	// price band matching ~400 products.
	const n = 100_000
	prices := make([]float64, n)
	for i := range prices {
		prices[i] = r.Float64() * 1000
	}
	iqs, err := core.NewRangeSampler(core.KindChunked, prices, nil)
	if err != nil {
		log.Fatal(err)
	}
	dep, err := permsample.New(prices, 555)
	if err != nil {
		log.Fatal(err)
	}

	lo, hi := 250.0, 254.0
	matching := iqs.Count(lo, hi)
	const pageSize = 8
	fmt.Printf("price band [$%.0f, $%.0f]: %d matching products, page size %d\n\n",
		lo, hi, matching, pageSize)

	iqsSeen := map[float64]bool{}
	depSeen := map[int]bool{}
	fmt.Println("visits  distinct items ever shown (IQS)  (dependent)")
	for visit := 1; visit <= 200; visit++ {
		page, ok := iqs.Sample(r, lo, hi, pageSize)
		if !ok {
			log.Fatal("empty band")
		}
		for _, v := range page {
			iqsSeen[v] = true
		}
		out, _ := dep.Query(lo, hi, pageSize, nil)
		for _, pos := range out {
			depSeen[pos] = true
		}
		if visit == 1 || visit == 10 || visit == 50 || visit == 200 {
			fmt.Printf("%6d  %29d  %11d\n", visit, len(iqsSeen), len(depSeen))
		}
	}
	fmt.Printf("\nIQS eventually shows every matching product (%d of %d after 200 visits);\n",
		len(iqsSeen), matching)
	fmt.Printf("the dependent structure never shows more than its frozen %d.\n", len(depSeen))
}
