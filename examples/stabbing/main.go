// Interval stabbing (Theorem 5 on the interval tree): an ad server that,
// for each incoming request at time t, samples one of the campaigns
// active at t — weighted by bid, fresh and fair on every request.
//
//	go run ./examples/stabbing
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/intervaltree"
)

func main() {
	r := core.NewRand(77)
	// 200,000 campaigns with start/end times (hours) and bid weights.
	const n = 200_000
	ivs := make([]intervaltree.Interval, n)
	bids := make([]float64, n)
	for i := range ivs {
		start := r.Float64() * 720 // a month of hours
		ivs[i] = intervaltree.Interval{L: start, R: start + 1 + r.Float64()*72}
		bids[i] = 0.1 + r.Float64()*9.9
	}
	tree, err := intervaltree.New(ivs, bids)
	if err != nil {
		log.Fatal(err)
	}

	t := 360.0 // mid-month
	active := tree.Report(t, nil)
	fmt.Printf("campaigns active at t = %.0f h: %d of %d\n", t, len(active), n)
	fmt.Printf("total active bid weight: %.1f\n\n", tree.StabWeight(t))

	fmt.Println("five ad requests at the same instant (independent, bid-weighted):")
	for i := 0; i < 5; i++ {
		out, ok := tree.Query(r, t, 1, nil)
		if !ok {
			log.Fatal("no active campaigns")
		}
		c := out[0]
		fmt.Printf("  request %d -> campaign %d (bid %.2f, active [%.1f, %.1f])\n",
			i+1, c, bids[c], ivs[c].L, ivs[c].R)
	}

	// Fairness check: over many requests, selection frequency tracks bid.
	const requests = 200_000
	counts := map[int]int{}
	out, ok := tree.Query(r, t, requests, nil)
	if !ok {
		log.Fatal("no active campaigns")
	}
	for _, c := range out {
		counts[c]++
	}
	// Find the highest- and lowest-bid active campaigns and compare.
	hi, lo := active[0], active[0]
	for _, c := range active {
		if bids[c] > bids[hi] {
			hi = c
		}
		if bids[c] < bids[lo] {
			lo = c
		}
	}
	total := tree.StabWeight(t)
	expHi := float64(requests) * bids[hi] / total
	expLo := float64(requests) * bids[lo] / total
	fmt.Printf("\nafter %d requests:\n", requests)
	fmt.Printf("  top-bid campaign    (bid %5.2f): served %4d times, expected %.1f\n",
		bids[hi], counts[hi], expHi)
	fmt.Printf("  bottom-bid campaign (bid %5.2f): served %4d times, expected %.1f\n",
		bids[lo], counts[lo], expLo)
	fmt.Println("selection frequencies track bids exactly — weighted fairness, fresh every request")
}
