// Approximate IQS (§9 Direction 4): trade a little per-element
// probability accuracy for a smaller, faster sampler — useful when the
// samples feed an estimator that tolerates (1±ε) bias anyway.
//
//	go run ./examples/approximate
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"repro/internal/core"
)

func main() {
	r := core.NewRand(99)
	const n = 1_000_000
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := range values {
		values[i] = r.Float64() * 1000
		weights[i] = 1 + r.Float64()*1023 // weights spread over 2^10
	}

	exact, err := core.NewRangeSampler(core.KindChunked, values, weights)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("eps     samples/sec (s=64 queries)   mean |bias| on a selectivity estimate")
	fmt.Println("exact ", measure(func(k int) ([]float64, bool) {
		return exact.Sample(r, 100, 200, k)
	}, r, values, weights))

	for _, eps := range []float64{0.05, 0.2, 0.5} {
		apx, err := core.NewApproxRangeSampler(values, weights, eps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%.2f   %s\n", eps, measure(func(k int) ([]float64, bool) {
			return apx.Sample(r, 100, 200, k)
		}, r, values, weights))
	}
	fmt.Println("\ntakeaway: ε-approximate sampling keeps estimates essentially unbiased for")
	fmt.Println("small ε while cutting per-query latency — Direction 4's trade in action.")
}

// measure reports throughput and the empirical bias of a downstream
// estimator (the weighted fraction of the range below its midpoint).
func measure(sample func(int) ([]float64, bool), r *core.Rand, values, weights []float64) string {
	// Ground truth for range [100, 200], threshold 150.
	wBelow, wTotal := 0.0, 0.0
	for i, v := range values {
		if v >= 100 && v <= 200 {
			wTotal += weights[i]
			if v < 150 {
				wBelow += weights[i]
			}
		}
	}
	truth := wBelow / wTotal

	const queries = 300
	const s = 64
	start := time.Now()
	biasSum := 0.0
	for q := 0; q < queries; q++ {
		out, ok := sample(s)
		if !ok {
			log.Fatal("empty range")
		}
		hits := 0
		for _, v := range out {
			if v < 150 {
				hits++
			}
		}
		biasSum += math.Abs(float64(hits)/float64(len(out)) - truth)
	}
	elapsed := time.Since(start)
	perSec := float64(queries*s) / elapsed.Seconds()
	return fmt.Sprintf("%10.0f                    %.4f", perSec, biasSum/queries)
}
