// Quickstart: build an IQS range sampler over a million weighted values
// and draw independent samples from ad-hoc ranges.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	// A synthetic "orders" table: values are order amounts, weights make
	// large orders proportionally more likely to be sampled.
	r := core.NewRand(2024)
	const n = 1_000_000
	amounts := make([]float64, n)
	weights := make([]float64, n)
	for i := range amounts {
		amounts[i] = r.Float64() * 10_000
		weights[i] = 1 + amounts[i]/1000 // mild weighting by amount
	}

	// The Theorem 3 structure: O(n) space, O(log n + s) per query.
	s, err := core.NewRangeSampler(core.KindChunked, amounts, weights)
	if err != nil {
		log.Fatal(err)
	}

	// Query: 10 weighted samples of orders between $2,000 and $3,000.
	samples, ok := s.Sample(r, 2000, 3000, 10)
	if !ok {
		log.Fatal("no orders in range")
	}
	fmt.Println("10 weighted samples from [$2000, $3000]:")
	for _, v := range samples {
		fmt.Printf("  $%.2f\n", v)
	}

	// Independence: re-issuing the same query gives fresh samples.
	again, _ := s.Sample(r, 2000, 3000, 10)
	fmt.Println("\nsame query again (independent fresh samples):")
	for _, v := range again {
		fmt.Printf("  $%.2f\n", v)
	}

	// Without-replacement sampling (uniform weights required).
	u, err := core.NewRangeSampler(core.KindChunked, amounts, nil)
	if err != nil {
		log.Fatal(err)
	}
	wor, err := u.SampleWoR(r, 2000, 3000, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n5 distinct orders (WoR):")
	for _, v := range wor {
		fmt.Printf("  $%.2f\n", v)
	}

	fmt.Printf("\nrange count |S∩q| = %d of %d rows — the samplers never touched most of them\n",
		s.Count(2000, 3000), n)
}
