// Fair near neighbour search (§2 Benefit 2): a restaurant recommender
// that answers "something near me" with a *uniformly random* nearby
// restaurant, fresh on every request — r-fair nearest neighbour queries
// built on set union sampling (Theorem 8).
//
//	go run ./examples/fairnn
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/fairnn"
)

func main() {
	r := core.NewRand(11)
	// A city of 50,000 restaurants: dense downtown cluster + suburbs.
	const n = 50_000
	pts := make([][]float64, n)
	for i := range pts {
		if i%3 == 0 { // downtown
			pts[i] = []float64{0.5 + r.NormFloat64()*0.02, 0.5 + r.NormFloat64()*0.02}
		} else {
			pts[i] = []float64{r.Float64(), r.Float64()}
		}
	}

	const walkingDistance = 0.01
	idx, err := fairnn.New(pts, walkingDistance, 8, 42)
	if err != nil {
		log.Fatal(err)
	}

	user := []float64{0.5, 0.5} // downtown user
	near := idx.NearBruteForce(user)
	fmt.Printf("restaurants within walking distance of downtown user: %d\n", len(near))
	fmt.Printf("candidate recall of the grid index: %.1f%%\n\n", idx.Recall(user)*100)

	// Ten requests from the same user: every answer is an independent
	// uniform choice among the nearby restaurants — fairness means no
	// restaurant is systematically favoured, diversity means repeat
	// visitors see fresh suggestions.
	fmt.Println("ten independent recommendations for the same query:")
	seen := map[int]int{}
	for i := 0; i < 10; i++ {
		out, ok, err := idx.Query(r, user, 1, nil)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			fmt.Println("  nothing nearby")
			continue
		}
		seen[out[0]]++
		fmt.Printf("  #%d: restaurant %d at (%.4f, %.4f)\n",
			i+1, out[0], pts[out[0]][0], pts[out[0]][1])
	}

	// Long-run fairness: the selection frequencies over many queries are
	// flat across the candidate set.
	const many = 20_000
	counts := map[int]int{}
	for i := 0; i < many; i++ {
		out, ok, err := idx.Query(r, user, 1, nil)
		if err != nil {
			log.Fatal(err)
		}
		if ok {
			counts[out[0]]++
		}
	}
	freqs := make([]int, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Ints(freqs)
	fmt.Printf("\nlong-run fairness over %d queries: %d distinct restaurants recommended\n",
		many, len(counts))
	fmt.Printf("selection counts: min %d, median %d, max %d (flat = fair)\n",
		freqs[0], freqs[len(freqs)/2], freqs[len(freqs)-1])
}
