// External memory (§8): run set sampling on a simulated disk and watch
// the I/O counter — the naive approach pays one random I/O per sample,
// the sample-pool structure pays the sorting bound amortized.
//
//	go run ./examples/external
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/em"
	"repro/internal/emiqs"
)

func main() {
	r := core.NewRand(8)
	const (
		n = 1 << 18 // 262,144 records
		B = 256     // words per block
		M = 4096    // memory words (16 blocks)
	)
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}

	fmt.Printf("EM model: n = %d records, B = %d, M = %d (M/B = %d)\n\n", n, B, M, M/B)

	// Naive: store the array, sample by random access.
	devNaive, err := em.NewDevice(B, M)
	if err != nil {
		log.Fatal(err)
	}
	naive, err := emiqs.NewNaiveSetSampler(devNaive, values)
	if err != nil {
		log.Fatal(err)
	}

	// Pool: Section 8 structure.
	devPool, err := em.NewDevice(B, M)
	if err != nil {
		log.Fatal(err)
	}
	pool, err := emiqs.NewSetSampler(devPool, values, r)
	if err != nil {
		log.Fatal(err)
	}
	buildIOs := devPool.IOs()
	fmt.Printf("pool preprocessing cost: %d I/Os (two external sorts of n records)\n\n", buildIOs)

	fmt.Println("s        naive I/Os   pool I/Os (amortized over 2n/s queries)")
	for _, s := range []int{64, 1024, 16384} {
		devNaive.ResetStats()
		naive.Query(r, s, nil)
		naiveIOs := devNaive.IOs()

		devPool.ResetStats()
		queries := 2 * n / s
		for i := 0; i < queries; i++ {
			pool.Query(r, s, nil)
		}
		poolIOs := float64(devPool.IOs()) / float64(queries)

		fmt.Printf("%-8d %-12d %.1f\n", s, naiveIOs, poolIOs)
	}

	// Range sampling: uniform samples of S ∩ [x, y].
	devRange, err := em.NewDevice(B, M)
	if err != nil {
		log.Fatal(err)
	}
	rs, err := emiqs.NewRangeSampler(devRange, values, r)
	if err != nil {
		log.Fatal(err)
	}
	rs.Query(r, 1000, 200000, 1024, nil) // warm the pools
	devRange.ResetStats()
	out, ok := rs.Query(r, 1000, 200000, 1024, nil)
	if !ok {
		log.Fatal("empty range")
	}
	fmt.Printf("\nEM range sampling: drew %d samples of S∩[1000, 200000] in %d I/Os "+
		"(naive random access would pay %d)\n", len(out), devRange.IOs(), len(out))
}
